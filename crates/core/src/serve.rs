//! Sharded, multi-threaded serving: many concurrent surgical sessions
//! partitioned across worker threads over one shared read-only model.
//!
//! [`ShardedMonitorPool`] is the production form of
//! [`MonitorPool`](crate::monitor::MonitorPool): sessions are placed on the
//! least-occupied of `workers` shard threads (round-robin while nobody
//! leaves), frames travel to their shard over a crossbeam channel
//! (ingress), and decisions come back tagged with their session on a shared
//! egress channel. The fleet is **elastic**: sessions can be
//! [removed](ShardedMonitorPool::remove_session) at any time — their engine
//! slot is recycled by the next [`add_session`](ShardedMonitorPool::add_session)
//! while decisions already in flight drain normally — so clients of a
//! long-running pool can connect and leave at will (the network ingress
//! service in `crates/ingress` rides exactly this surface). Each worker owns only the
//! **per-session** state (a `Vec` of [`InferenceEngine`]s plus batch
//! scratch); the [`TrainedPipeline`] — the model weights — is shared
//! read-only behind an `Arc`, which the `&self` inference paths
//! (`Network::predict_scratch` and friends) make safe.
//!
//! Within a shard, frames are processed in **micro-batched ticks**: the
//! worker drains its ingress queue and advances every distinct session one
//! frame via [`engine::step_batch`], which fuses the stage-1 forward passes
//! of all warm sessions into one batched network evaluation and groups
//! stage-2 windows by their routed error classifier. Determinism is part of
//! the contract: per session, the emitted decisions are **bit-exactly** the
//! ones the sequential `MonitorPool` produces, for every `ContextMode` —
//! batching changes wall-clock, never floats (asserted by
//! `tests/serve_equivalence.rs`).
//!
//! The module also hosts the workspace's one audited fork-join primitive,
//! [`parallel_map`], reused by the fault-injection campaign
//! (`faults::campaign`) so batch workloads and serving share a single
//! parallel-execution path.

use crate::config::Precision;
use crate::engine::{step_batch, BatchJob, BatchScratch, EngineError, EngineStep, InferenceEngine};
use crate::monitor::{output_from_step, MonitorOutput, SessionId};
use crate::pipeline::{ContextMode, TrainedPipeline};
use crate::report::{LatencyStats, PoolStats};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use gestures::Gesture;
use kinematics::KinematicSample;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Configuration of a [`ShardedMonitorPool`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Number of shard worker threads (each owns `sessions / workers`
    /// engines). Clamped to at least 1.
    pub workers: usize,
    /// Alert threshold applied by every worker, in `(0, 1)`.
    pub threshold: f32,
    /// Numeric tier every session of the pool infers at.
    /// [`Precision::Int8`] requires the pipeline's quantized twin
    /// ([`TrainedPipeline::quantize`]) and buys sessions-per-core density
    /// for a parity-gated accuracy delta.
    pub precision: Precision,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self { workers: 4, threshold: 0.5, precision: Precision::F32 }
    }
}

/// One per-frame result coming back over the egress channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Decision {
    /// The session the frame belonged to.
    pub session: SessionId,
    /// Zero-based index of the frame within its session's stream.
    pub frame: usize,
    /// The monitor decision, once the session is warm (`None` during
    /// warm-up, exactly like `MonitorPool::push` returning `Ok(None)`).
    pub output: Option<MonitorOutput>,
}

enum Job {
    Frame {
        slot: usize,
        frame: KinematicSample,
        context: Option<Gesture>,
        submitted: Instant,
    },
    /// Binds `session` to engine slot `slot` of this shard: a fresh slot
    /// (`slot == engines.len()`) grows the shard, a recycled slot is reset
    /// first. Queued in job order, so frames of the slot's previous tenant
    /// (all enqueued before the [`Job::Unbind`] that freed it) are scored
    /// and emitted under the old session id before the new tenant starts.
    Bind {
        slot: usize,
        session: SessionId,
    },
    /// Frees a slot on session removal: the tick in flight (if the slot is
    /// in it) runs first so the session's last queued frame still emits its
    /// decision, then the engine resets for the next tenant.
    Unbind {
        slot: usize,
    },
    ResetSession {
        slot: usize,
    },
    /// Chaos hook: the worker sleeps before processing anything queued
    /// behind this job — see [`ShardedMonitorPool::inject_stall`].
    Stall {
        dur: Duration,
    },
    Barrier {
        token: u64,
    },
}

/// Log-scale bucket count of the latency histogram: 6 decades
/// (10⁻⁴ … 10² ms) at 40 buckets per decade, ≈ 5.9% relative resolution.
const LATENCY_BUCKETS: usize = 240;
const LATENCY_LOG_LO: f32 = -4.0;
const LATENCY_DECADES: f32 = 6.0;

/// Per-decision latency accumulator over `compute_ms`. One fixed-size
/// buffer allocated at pool construction and reused forever, so recording
/// inside [`ShardedMonitorPool::poll`] / [`ShardedMonitorPool::flush`]
/// stays allocation-free; quantiles are answered from the histogram
/// (≤ ~6% relative error), the maximum is tracked exactly.
#[derive(Debug, Clone)]
struct LatencyTelemetry {
    buckets: Vec<u64>,
    count: usize,
    sum_ms: f64,
    max_ms: f32,
}

impl LatencyTelemetry {
    fn new() -> Self {
        Self { buckets: vec![0; LATENCY_BUCKETS], count: 0, sum_ms: 0.0, max_ms: 0.0 }
    }

    // lint: hot-path
    fn record(&mut self, ms: f32) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        let idx = if ms <= 0.0 {
            0
        } else {
            let pos = (ms.log10() - LATENCY_LOG_LO) / LATENCY_DECADES * LATENCY_BUCKETS as f32;
            (pos.floor().max(0.0) as usize).min(LATENCY_BUCKETS - 1)
        };
        // lint: allow(panic, reason = "idx is clamped to LATENCY_BUCKETS - 1 right above")
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ms += ms as f64;
        self.max_ms = self.max_ms.max(ms);
    }

    /// Upper edge of bucket `i` in ms.
    fn bucket_edge(i: usize) -> f32 {
        10f32.powf(LATENCY_LOG_LO + LATENCY_DECADES * (i + 1) as f32 / LATENCY_BUCKETS as f32)
    }

    /// Nearest-rank quantile from the histogram, capped at the exact max.
    /// The final bucket is the overflow bucket (everything ≥ 100 ms lands
    /// there with no resolution), so a quantile falling in it reports the
    /// exact maximum — an honest upper bound — rather than silently
    /// under-reporting at the 100 ms edge.
    fn quantile(&self, q: f32) -> f32 {
        if self.count == 0 {
            return f32::NAN;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f32).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                if i == LATENCY_BUCKETS - 1 {
                    break; // overflow bucket: no resolution, report the max
                }
                return Self::bucket_edge(i).min(self.max_ms);
            }
        }
        self.max_ms
    }

    fn stats(&self) -> LatencyStats {
        if self.count == 0 {
            return LatencyStats::empty();
        }
        LatencyStats {
            count: self.count,
            mean_ms: (self.sum_ms / self.count as f64) as f32,
            p50_ms: self.quantile(0.5),
            p99_ms: self.quantile(0.99),
            max_ms: self.max_ms,
        }
    }

    fn reset(&mut self) {
        self.buckets.fill(0);
        self.count = 0;
        self.sum_ms = 0.0;
        self.max_ms = 0.0;
    }
}

enum Event {
    Decision { decision: Decision, submitted: Instant },
    BarrierAck { token: u64 },
}

/// N concurrent sessions sharded across worker threads over one shared
/// read-only [`TrainedPipeline`], with cross-session micro-batching inside
/// each shard.
///
/// Per-session decisions are bit-exactly equal to the sequential
/// [`MonitorPool`](crate::monitor::MonitorPool); frames of one session are
/// processed in submission order, and decisions for one session arrive in
/// frame order (cross-session arrival order is unspecified — use
/// [`Decision::session`] / [`Decision::frame`] to demultiplex).
///
/// ```no_run
/// use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
/// use context_monitor::{ContextMode, TrainedPipeline};
/// # fn pipeline() -> TrainedPipeline { unimplemented!() }
/// let mut pool = ShardedMonitorPool::new(
///     std::sync::Arc::new(pipeline()),
///     ContextMode::Predicted,
///     ServeConfig::default(),
/// );
/// let a = pool.add_session();
/// # let frame = kinematics::KinematicSample::default();
/// pool.submit(a, &frame).unwrap();
/// for decision in pool.flush() {
///     if decision.output.is_some_and(|o| o.alert) {
///         eprintln!("session {} unsafe at frame {}", decision.session, decision.frame);
///     }
/// }
/// ```
pub struct ShardedMonitorPool {
    mode: ContextMode,
    ingress: Vec<Sender<Job>>,
    egress: Receiver<Event>,
    /// Frame buffers handed back by the workers after consumption, reused
    /// by the next `submit` so the steady-state ingress path allocates
    /// nothing (a fresh clone happens only while the in-flight high-water
    /// mark is still growing).
    recycle: Receiver<KinematicSample>,
    handles: Vec<JoinHandle<()>>,
    /// Placement of every session id ever opened: `Some((shard, slot))`
    /// while live, `None` once removed. Session ids are never reused
    /// (decisions in flight at removal stay unambiguous); engine slots are.
    assignments: Vec<Option<(usize, usize)>>,
    /// Live sessions per shard — the occupancy the placement policy
    /// balances and [`PoolStats`] exposes.
    occupancy: Vec<usize>,
    /// Engine slots ever created per shard (grow-only high-water mark).
    shard_slots: Vec<usize>,
    /// Freed engine slots per shard, reused LIFO by the next
    /// [`ShardedMonitorPool::add_session`].
    free: Vec<Vec<usize>>,
    /// Live session count (`assignments` minus the removed ones).
    live: usize,
    /// Per-session frame counters (frames submitted so far).
    submitted: Vec<usize>,
    /// Frames submitted whose decision has not been drained yet.
    in_flight: usize,
    barrier_token: u64,
    compute_telemetry: LatencyTelemetry,
    queue_telemetry: LatencyTelemetry,
}

impl ShardedMonitorPool {
    /// Spawns `config.workers` shard threads over the shared pipeline.
    /// Add sessions with [`ShardedMonitorPool::add_session`].
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not within `(0, 1)`, or if
    /// [`Precision::Int8`] is requested on a pipeline whose quantized twin
    /// was never built ([`TrainedPipeline::quantize`]) — the
    /// misconfiguration must fail at pool construction, not inside a shard
    /// worker.
    pub fn new(pipeline: Arc<TrainedPipeline>, mode: ContextMode, config: ServeConfig) -> Self {
        assert!(config.threshold > 0.0 && config.threshold < 1.0, "threshold must be in (0,1)");
        assert!(
            config.precision == Precision::F32 || pipeline.quantized.is_some(),
            "Precision::Int8 requires TrainedPipeline::quantize() before pool construction"
        );
        let workers = config.workers.max(1);
        let (egress_tx, egress_rx) = unbounded();
        let (recycle_tx, recycle_rx) = unbounded();
        let mut ingress = Vec::with_capacity(workers);
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = unbounded();
            let pipeline = Arc::clone(&pipeline);
            let egress = egress_tx.clone();
            let recycle = recycle_tx.clone();
            let threshold = config.threshold;
            let precision = config.precision;
            handles.push(std::thread::spawn(move || {
                worker_loop(&pipeline, mode, threshold, precision, &rx, &egress, &recycle);
            }));
            ingress.push(tx);
        }
        Self {
            mode,
            ingress,
            egress: egress_rx,
            recycle: recycle_rx,
            handles,
            assignments: Vec::new(),
            occupancy: vec![0; workers],
            shard_slots: vec![0; workers],
            free: vec![Vec::new(); workers],
            live: 0,
            submitted: Vec::new(),
            in_flight: 0,
            barrier_token: 0,
            compute_telemetry: LatencyTelemetry::new(),
            queue_telemetry: LatencyTelemetry::new(),
        }
    }

    /// Convenience: a pool with `n` sessions already open.
    pub fn with_sessions(
        pipeline: Arc<TrainedPipeline>,
        mode: ContextMode,
        config: ServeConfig,
        n: usize,
    ) -> Self {
        let mut pool = Self::new(pipeline, mode, config);
        for _ in 0..n {
            pool.add_session();
        }
        pool
    }

    /// Opens a new session and returns its id. Placement balances shard
    /// occupancy: the new session lands on the least-occupied shard (ties
    /// to the lowest index — with no removals this reproduces the
    /// historical round-robin deal exactly), reusing a freed engine slot
    /// when one exists. Session ids are never reused; engine slots are.
    pub fn add_session(&mut self) -> SessionId {
        let id = self.assignments.len();
        let shard = self
            .occupancy
            .iter()
            .enumerate()
            .min_by_key(|&(_, occ)| occ)
            .map(|(s, _)| s)
            .unwrap_or(0);
        // lint: allow(panic, reason = "shard comes from the occupancy index range; all per-shard vecs are workers long")
        let slot = self.free[shard].pop().unwrap_or_else(|| {
            let fresh = self.shard_slots[shard]; // lint: allow(panic, reason = "shard comes from the occupancy index range; all per-shard vecs are workers long")
            self.shard_slots[shard] += 1; // lint: allow(panic, reason = "shard comes from the occupancy index range; all per-shard vecs are workers long")
            fresh
        });
        self.send(shard, Job::Bind { slot, session: id });
        self.assignments.push(Some((shard, slot)));
        self.submitted.push(0);
        self.occupancy[shard] += 1; // lint: allow(panic, reason = "shard comes from the occupancy index range; all per-shard vecs are workers long")
        self.live += 1;
        id
    }

    /// Removes `session` from the pool: its engine slot is freed for the
    /// next [`ShardedMonitorPool::add_session`] (recycled slots go back to
    /// the least-occupied shard's pool) and the freed capacity stops
    /// counting toward shard occupancy. Decisions for frames submitted
    /// before the removal are **not** lost — they drain through
    /// [`ShardedMonitorPool::poll`] / [`ShardedMonitorPool::flush`] as
    /// usual, tagged with the removed session's id (ids are never reused,
    /// so late decisions stay unambiguous). Submitting to (or resetting) a
    /// removed session panics.
    ///
    /// Surviving sessions are unaffected bit-for-bit: their decision
    /// streams equal a pool that never saw the removed session (asserted
    /// in `tests/serve_equivalence.rs`).
    ///
    /// # Panics
    ///
    /// Panics on an unknown or already-removed session id.
    pub fn remove_session(&mut self, session: SessionId) {
        let (shard, slot) = self.assignment(session);
        // lint: allow(panic, reason = "assignment() above already panicked on unknown/removed ids; session is in range")
        self.assignments[session] = None;
        self.occupancy[shard] -= 1; // lint: allow(panic, reason = "shard stored by add_session, within the workers range")
        self.live -= 1;
        self.free[shard].push(slot); // lint: allow(panic, reason = "shard stored by add_session, within the workers range")
        self.send(shard, Job::Unbind { slot });
    }

    /// Number of live (added and not removed) sessions.
    pub fn session_count(&self) -> usize {
        self.live
    }

    /// Session ids handed out so far, removed ones included — the exclusive
    /// upper bound of every id this pool ever tagged a decision with.
    pub fn sessions_opened(&self) -> usize {
        self.assignments.len()
    }

    /// Whether `session` is currently live (opened and not removed).
    /// Unknown ids are not live.
    pub fn is_live(&self, session: SessionId) -> bool {
        matches!(self.assignments.get(session), Some(Some(_)))
    }

    /// The live placement of `session`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or removed session id.
    // lint: hot-path
    fn assignment(&self, session: SessionId) -> (usize, usize) {
        match self.assignments.get(session) {
            Some(Some(a)) => *a,
            // lint: allow(panic, reason = "documented panic on a removed session id")
            Some(None) => panic!("session {session} was removed"),
            // lint: allow(panic, reason = "documented panic on an unknown session id")
            None => panic!("unknown session {session}"),
        }
    }

    /// Number of shard worker threads.
    pub fn worker_count(&self) -> usize {
        self.ingress.len()
    }

    /// Frames submitted so far for `session` (every one of which produces
    /// exactly one [`Decision`] by the next [`ShardedMonitorPool::flush`]).
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn frames_submitted(&self, session: SessionId) -> usize {
        // lint: allow(panic, reason = "documented panic on an unknown session id")
        self.submitted[session]
    }

    /// Enqueues one frame of `session` for its shard. Returns immediately;
    /// the decision arrives via [`ShardedMonitorPool::poll`] /
    /// [`ShardedMonitorPool::flush`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::MissingContext`] (without enqueueing) when
    /// the pool runs in [`ContextMode::Perfect`] — use
    /// [`ShardedMonitorPool::submit_with_context`]. A misconfigured caller
    /// cannot crash or wedge the shard workers.
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn submit(
        &mut self,
        session: SessionId,
        frame: &KinematicSample,
    ) -> Result<(), EngineError> {
        if self.mode == ContextMode::Perfect {
            return Err(EngineError::MissingContext);
        }
        self.submit_inner(session, frame, None);
        Ok(())
    }

    /// Enqueues one frame with externally supplied context (the
    /// perfect-boundary upper bound).
    ///
    /// # Panics
    ///
    /// Panics on an unknown session id.
    pub fn submit_with_context(
        &mut self,
        session: SessionId,
        frame: &KinematicSample,
        gesture: Gesture,
    ) {
        self.submit_inner(session, frame, Some(gesture));
    }

    // lint: hot-path
    fn submit_inner(
        &mut self,
        session: SessionId,
        frame: &KinematicSample,
        context: Option<Gesture>,
    ) {
        let (shard, slot) = self.assignment(session);
        // lint: allow(panic, reason = "submitted grows in lockstep with assignments; assignment() above vouched for session")
        self.submitted[session] += 1;
        self.in_flight += 1;
        // Reuse a frame buffer the workers handed back; `Vec::clone_from`
        // copies in place when the manipulator count matches, so the
        // steady-state submit path performs no heap allocation.
        let frame = match self.recycle.try_recv() {
            Ok(mut buf) => {
                buf.manipulators.clone_from(&frame.manipulators);
                buf
            }
            // lint: allow(alloc, reason = "cold branch: allocates only while the in-flight high-water mark is still growing")
            Err(_) => frame.clone(),
        };
        // lint: allow(determinism, reason = "latency telemetry timestamp; never feeds the decision value, which replays bit-identically")
        self.send(shard, Job::Frame { slot, frame, context, submitted: Instant::now() });
    }

    /// Restores `session` to a cold, freshly added state: the engine's
    /// windows and smoothing filter are cleared and its frame counter
    /// rewinds to 0, so the next submitted frame is frame 0 again — the
    /// sharded counterpart of `MonitorPool::reset_session`, letting a fleet
    /// driver reuse pool sessions across trials instead of growing the pool
    /// forever.
    ///
    /// The reset is queued behind the session's in-flight frames (shard jobs
    /// execute in submission order), but decisions for frames submitted
    /// before the reset keep their pre-reset frame indices — drain them
    /// (e.g. [`ShardedMonitorPool::flush`]) before reusing the session if
    /// frame numbering matters to you.
    ///
    /// # Panics
    ///
    /// Panics on an unknown or removed session id.
    pub fn reset_session(&mut self, session: SessionId) {
        let (shard, slot) = self.assignment(session);
        // lint: allow(panic, reason = "submitted grows in lockstep with assignments; assignment() above vouched for session")
        self.submitted[session] = 0;
        self.send(shard, Job::ResetSession { slot });
    }

    /// Chaos hook: makes shard `shard` sleep for `dur` at the point the
    /// stall reaches it in job order. Every decision the shard has not yet
    /// computed is delayed — frames queued behind the stall *and* frames
    /// already drained into the micro-tick under construction (the worker
    /// sleeps before running that tick). Nothing is lost; all decisions
    /// arrive late. This is the deterministic way to force
    /// decision-deadline misses in fail-safe drills
    /// (`faults::run_forced_miss_drill`) and tests.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range shard index.
    pub fn inject_stall(&mut self, shard: usize, dur: Duration) {
        assert!(shard < self.ingress.len(), "unknown shard {shard}");
        self.send(shard, Job::Stall { dur });
    }

    /// Non-blocking drain of the decisions that are ready right now.
    pub fn poll(&mut self) -> Vec<Decision> {
        let mut out = Vec::new();
        self.poll_into(&mut out);
        out
    }

    /// Non-blocking drain appending into a caller-owned buffer (no
    /// allocation once the buffer is warm).
    // lint: hot-path
    pub fn poll_into(&mut self, out: &mut Vec<Decision>) {
        loop {
            match self.egress.try_recv() {
                Ok(Event::Decision { decision, submitted }) => {
                    self.record(&decision, submitted);
                    out.push(decision);
                }
                Ok(Event::BarrierAck { .. }) => {
                    // lint: allow(panic, reason = "acks exist only while flush_into is blocking; one leaking here is a protocol bug, fail loud")
                    unreachable!("barrier acks are consumed by flush")
                }
                Err(TryRecvError::Empty | TryRecvError::Disconnected) => break,
            }
        }
    }

    /// Blocking drain with a deadline: appends decisions into `out` until
    /// every submitted frame has produced one (returns `true`) or `deadline`
    /// passes (returns `false`, with whatever arrived in time already in
    /// `out`). A deadline already in the past still sweeps the decisions
    /// sitting in the egress queue — it just never waits.
    ///
    /// This is the serving tick of the deadline-gated closed loop: the
    /// fleet reactor drains with its per-tick budget and fails safe for
    /// every decision that misses it (`reactor::PooledReactor`).
    // lint: hot-path
    pub fn drain_deadline(&mut self, deadline: Instant, out: &mut Vec<Decision>) -> bool {
        while self.in_flight > 0 {
            // lint: allow(determinism, reason = "deadline bookkeeping for the drain loop; decision values stay clock-free")
            let timeout = deadline.saturating_duration_since(Instant::now());
            match self.egress.recv_timeout(timeout) {
                Ok(Event::Decision { decision, submitted }) => {
                    self.record(&decision, submitted);
                    out.push(decision);
                }
                Ok(Event::BarrierAck { .. }) => {
                    // lint: allow(panic, reason = "acks exist only while flush_into is blocking; one leaking here is a protocol bug, fail loud")
                    unreachable!("barrier acks are consumed by flush")
                }
                Err(RecvTimeoutError::Timeout) => return false,
                Err(RecvTimeoutError::Disconnected) => {
                    // lint: allow(panic, reason = "a dead shard worker while frames are in flight means lost decisions; the monitor must not limp on")
                    panic!("shard worker exited while frames were in flight")
                }
            }
        }
        true
    }

    /// Number of submitted frames whose decision has not been drained yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Latency decomposition of every decision drained so far via
    /// [`ShardedMonitorPool::poll`] / [`ShardedMonitorPool::flush`] /
    /// [`ShardedMonitorPool::drain_deadline`]: per-decision **compute**
    /// (`compute_ms`, warm frames only — warm-up frames carry no compute
    /// measurement) and **ingress-to-egress queueing** (submit timestamp →
    /// decision drain, every frame). Render with the [`PoolStats`] /
    /// [`LatencyStats`] `Display` impls.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            compute: self.compute_telemetry.stats(),
            queue: self.queue_telemetry.stats(),
            occupancy: self.occupancy.clone(),
        }
    }

    /// Live sessions per shard, index-aligned with the shard workers — the
    /// occupancy [`ShardedMonitorPool::add_session`] balances. Sums to
    /// [`ShardedMonitorPool::session_count`].
    pub fn shard_occupancy(&self) -> &[usize] {
        &self.occupancy
    }

    /// Clears the latency telemetry (e.g. between load phases). The fixed
    /// histogram buffers are kept, so this never allocates.
    pub fn reset_stats(&mut self) {
        self.compute_telemetry.reset();
        self.queue_telemetry.reset();
    }

    fn record(&mut self, d: &Decision, submitted: Instant) {
        self.in_flight = self.in_flight.saturating_sub(1);
        self.queue_telemetry.record(submitted.elapsed().as_secs_f32() * 1000.0);
        if let Some(o) = &d.output {
            self.compute_telemetry.record(o.compute_ms);
        }
    }

    /// Waits until every frame submitted so far has been processed and
    /// returns all pending decisions. Decisions of one session appear in
    /// frame order.
    pub fn flush(&mut self) -> Vec<Decision> {
        let mut out = Vec::new();
        self.flush_into(&mut out);
        out
    }

    /// [`ShardedMonitorPool::flush`] appending into a caller-owned buffer
    /// (no allocation once the buffer is warm).
    // lint: hot-path
    pub fn flush_into(&mut self, out: &mut Vec<Decision>) {
        self.barrier_token += 1;
        let token = self.barrier_token;
        for shard in 0..self.ingress.len() {
            self.send(shard, Job::Barrier { token });
        }
        let mut acked = 0usize;
        while acked < self.ingress.len() {
            match self.egress.recv() {
                Ok(Event::Decision { decision, submitted }) => {
                    self.record(&decision, submitted);
                    out.push(decision);
                }
                Ok(Event::BarrierAck { token: t }) if t == token => acked += 1,
                Ok(Event::BarrierAck { .. }) => {}
                // lint: allow(panic, reason = "a dead shard worker while frames are in flight means lost decisions; the monitor must not limp on")
                Err(_) => panic!("shard worker exited while frames were in flight"),
            }
        }
    }

    // lint: hot-path
    fn send(&self, shard: usize, job: Job) {
        self.ingress[shard] // lint: allow(panic, reason = "shard is session % ingress.len() at every call site")
            .send(job)
            // lint: allow(panic, reason = "a worker exits only on pool drop; losing one while the pool is alive must fail loud")
            .unwrap_or_else(|_| panic!("shard worker {shard} exited while the pool was alive"));
    }
}

impl Drop for ShardedMonitorPool {
    fn drop(&mut self) {
        // Closing the ingress channels is the shutdown signal.
        self.ingress.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The per-shard state a [`run_tick`] call consumes: the tick under
/// construction plus per-session bookkeeping. All buffers are reused across
/// ticks — the steady-state worker loop performs no per-tick allocation.
/// Slots are recycled across sessions ([`Job::Bind`] / [`Job::Unbind`]);
/// `session_ids[slot]` is the current tenant every emitted decision is
/// tagged with.
struct ShardState {
    engines: Vec<InferenceEngine>,
    frames_done: Vec<usize>,
    session_ids: Vec<SessionId>,
    scratch: BatchScratch,
    steps: Vec<EngineStep>,
    /// The tick under construction (at most one job per session) and each
    /// job's ingress timestamp, index-aligned.
    tick: Vec<BatchJob>,
    tick_submitted: Vec<Instant>,
    in_tick: Vec<bool>,
}

/// One shard: owns its sessions' engines, drains the ingress queue into
/// micro-batched ticks, and reports decisions on the egress channel.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    pipeline: &TrainedPipeline,
    mode: ContextMode,
    threshold: f32,
    precision: Precision,
    ingress: &Receiver<Job>,
    egress: &Sender<Event>,
    recycle: &Sender<KinematicSample>,
) {
    let mut state = ShardState {
        engines: Vec::new(),
        frames_done: Vec::new(),
        session_ids: Vec::new(),
        scratch: BatchScratch::new(pipeline),
        steps: Vec::new(),
        tick: Vec::new(),
        tick_submitted: Vec::new(),
        in_tick: Vec::new(),
    };

    // `recv` blocks for work and errors once the pool drops its senders.
    while let Ok(first) = ingress.recv() {
        // Drain whatever else is already queued so co-resident sessions
        // land in the same micro-batched tick.
        let mut next = Some(first);
        loop {
            let Some(job) = next.take() else {
                match ingress.try_recv() {
                    Ok(job) => next = Some(job),
                    Err(_) => break,
                }
                continue;
            };
            match job {
                Job::Bind { slot, session } => {
                    if slot == state.engines.len() {
                        state
                            .engines
                            .push(InferenceEngine::with_precision(pipeline, mode, precision));
                        state.frames_done.push(0);
                        state.session_ids.push(session);
                        state.in_tick.push(false);
                    } else {
                        // Recycled slot: frames of the previous tenant were
                        // all enqueued before the Unbind that freed it, so
                        // the engine is already reset and out of the tick —
                        // but reset defensively anyway; a stale window
                        // leaking into a new session would corrupt silently.
                        // lint: allow(panic, reason = "the pool binds only freed slots or the one fresh slot at engines.len()")
                        if state.in_tick[slot] {
                            run_tick(pipeline, threshold, &mut state, egress, recycle);
                        }
                        state.engines[slot].reset(); // lint: allow(panic, reason = "the pool binds only freed slots or the one fresh slot at engines.len()")
                        state.frames_done[slot] = 0;
                        state.session_ids[slot] = session; // lint: allow(panic, reason = "the pool binds only freed slots or the one fresh slot at engines.len()")
                    }
                }
                Job::Unbind { slot } => {
                    // lint: allow(panic, reason = "the pool only unbinds slots it bound earlier")
                    if state.in_tick[slot] {
                        // The session's last queued frame must still emit
                        // its decision before the slot is recycled.
                        run_tick(pipeline, threshold, &mut state, egress, recycle);
                    }
                    state.engines[slot].reset(); // lint: allow(panic, reason = "the pool only unbinds slots it bound earlier")
                    state.frames_done[slot] = 0;
                }
                Job::ResetSession { slot } => {
                    // lint: allow(panic, reason = "the pool only routes slots it bound via Bind")
                    if state.in_tick[slot] {
                        // The session's current frame must be scored (and
                        // its decision emitted) before the state rewinds.
                        run_tick(pipeline, threshold, &mut state, egress, recycle);
                    }
                    state.engines[slot].reset(); // lint: allow(panic, reason = "the pool only routes slots it bound via Bind")
                    state.frames_done[slot] = 0;
                }
                Job::Stall { dur } => std::thread::sleep(dur),
                Job::Barrier { token } => {
                    // Everything before the barrier must be visible.
                    run_tick(pipeline, threshold, &mut state, egress, recycle);
                    let _ = egress.send(Event::BarrierAck { token });
                }
                Job::Frame { slot, frame, context, submitted } => {
                    // lint: allow(panic, reason = "the pool only routes slots it bound via Bind")
                    if state.in_tick[slot] {
                        // Second frame of the same session: the current
                        // tick must complete first to keep per-session
                        // frame order (and window validity).
                        run_tick(pipeline, threshold, &mut state, egress, recycle);
                    }
                    // lint: allow(panic, reason = "the pool only routes slots it bound via Bind")
                    state.in_tick[slot] = true;
                    state.tick.push(BatchJob { engine: slot, frame, context });
                    state.tick_submitted.push(submitted);
                }
            }
        }
        run_tick(pipeline, threshold, &mut state, egress, recycle);
    }
}

/// Runs one micro-batched tick and emits its decisions.
// lint: hot-path
fn run_tick(
    pipeline: &TrainedPipeline,
    threshold: f32,
    state: &mut ShardState,
    egress: &Sender<Event>,
    recycle: &Sender<KinematicSample>,
) {
    if state.tick.is_empty() {
        return;
    }
    // lint: allow(determinism, reason = "per-frame latency measurement around step_batch; the scores it brackets are clock-free")
    let start = Instant::now();
    step_batch(pipeline, &mut state.engines, &state.tick, &mut state.scratch, &mut state.steps);
    let per_frame_ms = start.elapsed().as_secs_f32() * 1000.0 / state.tick.len() as f32;
    for ((job, step), &submitted) in
        state.tick.iter().zip(state.steps.iter()).zip(state.tick_submitted.iter())
    {
        let slot = job.engine;
        let frame_idx = state.frames_done[slot]; // lint: allow(panic, reason = "tick jobs carry slots the pool created via AddSession; per-slot vecs grow in lockstep")
        state.frames_done[slot] += 1;
        state.in_tick[slot] = false; // lint: allow(panic, reason = "tick jobs carry slots the pool created via AddSession; per-slot vecs grow in lockstep")
        let _ = egress.send(Event::Decision {
            decision: Decision {
                session: state.session_ids[slot], // lint: allow(panic, reason = "tick jobs carry slots the pool bound via Bind; per-slot vecs grow in lockstep")
                frame: frame_idx,
                output: output_from_step(step, threshold, per_frame_ms),
            },
            submitted,
        });
    }
    // Hand the consumed frame buffers back to the pool for the next
    // `submit` to reuse (the pool may already be gone at shutdown).
    for job in state.tick.drain(..) {
        let _ = recycle.send(job.frame);
    }
    state.tick_submitted.clear();
}

/// Splits `0..len` into at most `parts` contiguous chunks whose sizes
/// differ by **at most one** (the first `len % parts` chunks are one longer)
/// — the audited work-partitioning rule shared by the shard workers and the
/// fault-injection campaign. An earlier `div_ceil`-based split could leave
/// the last worker with a fraction of everyone else's load.
pub fn balanced_chunks(len: usize, parts: usize) -> impl Iterator<Item = std::ops::Range<usize>> {
    let parts = parts.max(1).min(len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut start = 0usize;
    (0..parts).filter_map(move |i| {
        let size = base + usize::from(i < extra);
        let range = start..start + size;
        start += size;
        (!range.is_empty()).then_some(range)
    })
}

/// Fork-join parallel map over a slice: `items` are split with
/// [`balanced_chunks`] across `threads` scoped workers and the results are
/// returned **in input order** regardless of which worker computed them.
/// This is the one parallel-execution path batch workloads in this
/// workspace use (see `faults::campaign`).
pub fn parallel_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    crossbeam::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = balanced_chunks(items.len(), threads)
            .map(|range| {
                // lint: allow(panic, reason = "balanced_chunks yields ranges inside 0..items.len() by construction")
                let chunk = &items[range];
                s.spawn(move |_| chunk.iter().map(f).collect::<Vec<R>>())
            })
            .collect();
        let mut out = Vec::with_capacity(items.len());
        for handle in handles {
            // lint: allow(panic, reason = "a worker panic already poisoned the batch result; re-raising it on the caller is the only honest outcome")
            out.extend(handle.join().expect("parallel_map worker panicked"));
        }
        out
    })
    // lint: allow(panic, reason = "scope errors only propagate worker panics, re-raised above")
    .expect("parallel_map scope")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_chunks_cover_everything_with_sizes_within_one() {
        for len in [0usize, 1, 2, 7, 16, 100, 101] {
            for parts in [1usize, 2, 3, 4, 7, 16] {
                let chunks: Vec<_> = balanced_chunks(len, parts).collect();
                let covered: usize = chunks.iter().map(|c| c.len()).sum();
                assert_eq!(covered, len, "len={len} parts={parts}");
                // Contiguous and ordered.
                let mut expect = 0usize;
                for c in &chunks {
                    assert_eq!(c.start, expect, "len={len} parts={parts}");
                    expect = c.end;
                }
                if let (Some(max), Some(min)) =
                    (chunks.iter().map(|c| c.len()).max(), chunks.iter().map(|c| c.len()).min())
                {
                    assert!(max - min <= 1, "uneven split {chunks:?} for len={len}");
                }
            }
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        let items: Vec<u64> = (0..137).collect();
        for threads in [1usize, 2, 4, 5] {
            let got = parallel_map(&items, threads, |&x| x * 3 + 1);
            let want: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_on_empty_input() {
        let got: Vec<u32> = parallel_map(&[] as &[u32], 4, |&x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn latency_telemetry_orders_quantiles_and_tracks_exact_max() {
        let mut t = LatencyTelemetry::new();
        assert_eq!(t.stats().count, 0, "empty telemetry (NaN quantiles compare unequal)");
        // 100 decisions at ~1 ms, one straggler at 50 ms.
        for i in 0..100 {
            t.record(1.0 + 0.001 * i as f32);
        }
        t.record(50.0);
        let s = t.stats();
        assert_eq!(s.count, 101);
        assert!(s.p50_ms <= s.p99_ms && s.p99_ms <= s.max_ms, "{s:?}");
        assert_eq!(s.max_ms, 50.0, "max is exact");
        // p50 lands in the ~1 ms band (≤ ~6% bucket quantization).
        assert!((0.9..=1.2).contains(&s.p50_ms), "p50 {}", s.p50_ms);
        assert!(s.mean_ms > s.p50_ms, "straggler pulls the mean above the median");
        t.reset();
        assert_eq!(t.stats().count, 0);
        assert!(t.stats().p50_ms.is_nan());
    }

    #[test]
    fn quantile_reports_the_containing_buckets_upper_edge() {
        // Pin the quantile readout to the *upper* edge of the bucket the
        // target rank lands in: a lower-edge readout under-reports by up to
        // one bucket width (~6%), which matters when the p99 provisions a
        // real-time decision deadline. All mass sits mid-bucket, and the
        // max lives in a higher bucket so the `.min(max_ms)` cap cannot
        // mask a lower-edge regression.
        let mut t = LatencyTelemetry::new();
        let v = 1.05f32; // strictly inside a bucket of the 40/decade layout
        for _ in 0..100 {
            t.record(v);
        }
        t.record(80.0);
        let s = t.stats();
        assert!(s.p50_ms >= v, "p50 {} under-reports the true quantile {v}", s.p50_ms);
        assert!(s.p50_ms <= v * 1.07, "p50 {} more than a bucket above {v}", s.p50_ms);
        assert!(s.p99_ms >= v && s.p99_ms <= v * 1.07, "p99 {} off the {v} bucket", s.p99_ms);
        assert_eq!(s.max_ms, 80.0);
    }

    #[test]
    fn latency_telemetry_clamps_out_of_range_samples() {
        let mut t = LatencyTelemetry::new();
        t.record(0.0); // below the first bucket edge
        t.record(1e-6);
        t.record(1e5); // beyond the last bucket edge
        t.record(f32::NAN); // ignored
        t.record(-1.0); // ignored
        let s = t.stats();
        assert_eq!(s.count, 3);
        assert_eq!(s.max_ms, 1e5);
        assert!(s.p99_ms <= s.max_ms);
    }

    #[test]
    fn latency_telemetry_overflow_quantiles_report_the_exact_max() {
        // Every sample beyond the histogram range: the overflow bucket has
        // no resolution, so quantiles must report the exact max instead of
        // under-reporting at the 100 ms top edge.
        let mut t = LatencyTelemetry::new();
        for _ in 0..10 {
            t.record(500.0);
        }
        let s = t.stats();
        assert_eq!(s.p50_ms, 500.0, "overflow p50 must not cap at the 100 ms edge");
        assert_eq!(s.p99_ms, 500.0);
        assert_eq!(s.max_ms, 500.0);
    }
}
