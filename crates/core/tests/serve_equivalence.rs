//! The serving determinism guarantee: a `ShardedMonitorPool` (multiple
//! worker threads, cross-session micro-batching, channel transport) must
//! produce **bit-exactly** the decisions of the sequential `MonitorPool`,
//! per session, across every `ContextMode` and multiple training seeds.
//! This is the acceptance criterion CI enforces under `--release`.

use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
use context_monitor::{
    step_batch, BatchJob, BatchScratch, ContextMode, EngineError, InferenceEngine, MonitorConfig,
    MonitorPool, Precision, SafetyMonitor, TrainedPipeline,
};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::{Dataset, FeatureSet};
use std::sync::Arc;

fn tiny_pipeline(seed: u64) -> (TrainedPipeline, Dataset) {
    let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(seed));
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(seed ^ 0xA5);
    cfg.train.epochs = 2;
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    (TrainedPipeline::train(&ds, &idx, &cfg), ds)
}

/// (gesture, score bits, alert) triple — the deterministic fields of a
/// decision (`compute_ms` is wall-clock and legitimately differs).
type Key = (usize, u32, bool);

fn sequential_reference(
    pipeline: TrainedPipeline,
    ds: &Dataset,
    mode: ContextMode,
    sessions: usize,
) -> (TrainedPipeline, Vec<Vec<Key>>) {
    let mut pool = MonitorPool::with_sessions(pipeline, mode, sessions);
    let mut outs: Vec<Vec<Key>> = vec![Vec::new(); sessions];
    let longest = ds.demos.iter().take(sessions).map(|d| d.len()).max().unwrap();
    for t in 0..longest {
        for (s, demo) in ds.demos.iter().take(sessions).enumerate() {
            let Some(frame) = demo.frames.get(t) else { continue };
            let out = match mode {
                ContextMode::Perfect => pool.push_with_context(s, frame, demo.gestures[t]),
                _ => pool.push(s, frame).expect("non-Perfect push cannot fail"),
            };
            if let Some(o) = out {
                outs[s].push((o.gesture.index(), o.unsafe_probability.to_bits(), o.alert));
            }
        }
    }
    (pool.into_pipeline(), outs)
}

fn sharded_run(
    pipeline: Arc<TrainedPipeline>,
    ds: &Dataset,
    mode: ContextMode,
    sessions: usize,
    workers: usize,
    precision: Precision,
) -> Vec<Vec<Key>> {
    let cfg = ServeConfig { workers, threshold: 0.5, precision };
    let mut pool = ShardedMonitorPool::with_sessions(pipeline, mode, cfg, sessions);
    assert_eq!(pool.session_count(), sessions);
    assert_eq!(pool.worker_count(), workers);
    let longest = ds.demos.iter().take(sessions).map(|d| d.len()).max().unwrap();
    for t in 0..longest {
        for (s, demo) in ds.demos.iter().take(sessions).enumerate() {
            let Some(frame) = demo.frames.get(t) else { continue };
            match mode {
                ContextMode::Perfect => pool.submit_with_context(s, frame, demo.gestures[t]),
                _ => pool.submit(s, frame).expect("non-Perfect submit cannot fail"),
            }
        }
    }
    let mut outs: Vec<Vec<(usize, Key)>> = vec![Vec::new(); sessions];
    for d in pool.flush() {
        if let Some(o) = d.output {
            outs[d.session]
                .push((d.frame, (o.gesture.index(), o.unsafe_probability.to_bits(), o.alert)));
        }
    }
    // Per-session frame order is guaranteed; verify rather than assume.
    for (s, session_outs) in outs.iter().enumerate() {
        for pair in session_outs.windows(2) {
            assert!(pair[0].0 < pair[1].0, "session {s}: decisions out of frame order");
        }
    }
    outs.into_iter().map(|v| v.into_iter().map(|(_, k)| k).collect()).collect()
}

/// The headline guarantee: sharded + batched == sequential, bit for bit,
/// for all three context modes and three training seeds.
#[test]
fn sharded_pool_is_bit_exactly_equal_to_sequential_pool() {
    for seed in [11u64, 29, 47] {
        let (mut pipeline, ds) = tiny_pipeline(seed);
        assert!(!pipeline.error_nets.is_empty(), "seed {seed}: no dedicated classifiers");
        let sessions = 6.min(ds.demos.len());
        for mode in [ContextMode::Predicted, ContextMode::Perfect, ContextMode::NoContext] {
            let (returned, reference) = sequential_reference(pipeline, &ds, mode, sessions);
            let shared = Arc::new(returned);
            for workers in [1usize, 3] {
                let sharded =
                    sharded_run(Arc::clone(&shared), &ds, mode, sessions, workers, Precision::F32);
                assert_eq!(
                    reference, sharded,
                    "seed {seed}, {mode}, {workers} workers: sharded output diverged"
                );
            }
            pipeline = Arc::try_unwrap(shared).ok().expect("workers joined, sole owner");
        }
    }
}

/// The quantized tier's own determinism guarantee: int8 decisions are
/// bit-identical across batch size 1 (a lone engine stepped frame by frame)
/// and the sharded pool's variable micro-batches, across worker counts.
/// Int8 is *not* bit-equal to f32 — the parity gate bounds that accuracy
/// delta — but within the tier every execution shape must agree exactly.
#[test]
fn int8_tier_is_bit_identical_across_workers_and_batch_sizes() {
    let (mut pipeline, ds) = tiny_pipeline(61);
    let idx: Vec<usize> = (0..ds.len()).collect();
    pipeline.quantize(&ds, &idx).expect("built-in specs are quantizable");
    let sessions = 4.min(ds.demos.len());

    // Reference: per-session engines on the int8 tier, batch size 1.
    let mut engines: Vec<InferenceEngine> = (0..sessions)
        .map(|_| {
            InferenceEngine::with_precision(&pipeline, ContextMode::Predicted, Precision::Int8)
        })
        .collect();
    let mut reference: Vec<Vec<Key>> = vec![Vec::new(); sessions];
    let longest = ds.demos.iter().take(sessions).map(|d| d.len()).max().unwrap();
    for t in 0..longest {
        for s in 0..sessions {
            let Some(frame) = ds.demos[s].frames.get(t) else { continue };
            let step = engines[s].step(&pipeline, frame).expect("Predicted mode");
            if let Some((gesture, score)) = step.complete() {
                reference[s].push((gesture.index(), score.to_bits(), score > 0.5));
            }
        }
    }
    assert!(reference.iter().any(|s| !s.is_empty()), "sessions should warm up");

    let shared = Arc::new(pipeline);
    for workers in [1usize, 3] {
        let sharded = sharded_run(
            Arc::clone(&shared),
            &ds,
            ContextMode::Predicted,
            sessions,
            workers,
            Precision::Int8,
        );
        assert_eq!(
            reference, sharded,
            "{workers} workers: int8 sharded output diverged from the single-engine reference"
        );
    }
}

/// Asking the pool for the int8 tier on a pipeline whose quantized twin was
/// never built must fail at construction, not at the first frame.
#[test]
#[should_panic(expected = "quantize")]
fn int8_pool_on_unquantized_pipeline_fails_at_construction() {
    let (pipeline, _ds) = tiny_pipeline(67);
    let cfg = ServeConfig { workers: 1, threshold: 0.5, precision: Precision::Int8 };
    let _pool =
        ShardedMonitorPool::with_sessions(Arc::new(pipeline), ContextMode::Predicted, cfg, 1);
}

/// `step_batch` (the micro-batching core the shard workers run) advanced
/// engines must match engines stepped one at a time, bit for bit.
#[test]
fn step_batch_matches_sequential_steps() {
    let (pipeline, ds) = tiny_pipeline(23);
    let n = 4.min(ds.demos.len());

    // Reference: each demo stepped frame by frame through its own engine.
    let mut ref_engines: Vec<InferenceEngine> =
        (0..n).map(|_| InferenceEngine::new(&pipeline, ContextMode::Predicted)).collect();
    // Batched: the same demos advanced via step_batch ticks.
    let mut batch_engines: Vec<InferenceEngine> =
        (0..n).map(|_| InferenceEngine::new(&pipeline, ContextMode::Predicted)).collect();
    let mut scratch = BatchScratch::new(&pipeline);
    let mut steps = Vec::new();

    let frames = ds.demos.iter().take(n).map(|d| d.len()).min().unwrap();
    for t in 0..frames {
        let mut expected = Vec::new();
        for (s, engine) in ref_engines.iter_mut().enumerate() {
            expected.push(engine.step(&pipeline, &ds.demos[s].frames[t]).expect("Predicted mode"));
        }
        let jobs: Vec<BatchJob> = (0..n)
            .map(|s| BatchJob { engine: s, frame: ds.demos[s].frames[t].clone(), context: None })
            .collect();
        step_batch(&pipeline, &mut batch_engines, &jobs, &mut scratch, &mut steps);
        assert_eq!(steps, expected, "tick {t}: batched steps diverged");
    }
}

/// A misconfigured caller gets a typed error, not a crash, and the other
/// sessions keep working (the satellite bugfix for the Perfect-mode panic).
#[test]
fn missing_context_is_a_typed_error_not_a_panic() {
    let (pipeline, ds) = tiny_pipeline(31);
    let frame = &ds.demos[0].frames[0];

    let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Perfect);
    assert_eq!(monitor.push(frame), Err(EngineError::MissingContext));
    // The failed push consumed nothing: the engine state is untouched.
    assert_eq!(monitor.frames_seen(), 0);
    // The correctly supplied path still works afterwards.
    let _ = monitor.push_with_context(frame, ds.demos[0].gestures[0]);
    assert_eq!(monitor.frames_seen(), 1);

    // Same contract on the sharded pool: submit is rejected up front and
    // the pool (with its worker threads) stays fully operational.
    let pipeline = Arc::new(monitor.into_pipeline());
    let mut pool = ShardedMonitorPool::with_sessions(
        pipeline,
        ContextMode::Perfect,
        ServeConfig { workers: 2, threshold: 0.5, precision: Precision::F32 },
        2,
    );
    assert_eq!(pool.submit(0, frame), Err(EngineError::MissingContext));
    // The rejected frame was not consumed: nothing was enqueued for the
    // session and no decision ever comes back for it.
    assert_eq!(pool.frames_submitted(0), 0, "failed submit must not consume the frame");
    assert!(pool.flush().is_empty(), "no decision may exist for a rejected frame");

    pool.submit_with_context(1, frame, ds.demos[0].gestures[0]);
    let decisions = pool.flush();
    assert_eq!(decisions.len(), 1, "only the well-formed submission was processed");
    assert_eq!(decisions[0].session, 1);
    assert_eq!(pool.frames_submitted(1), 1);

    // The session whose submit failed is intact: its next well-formed
    // frame is frame 0, as if the failed call never happened.
    pool.submit_with_context(0, frame, ds.demos[0].gestures[0]);
    let decisions = pool.flush();
    assert_eq!(decisions.len(), 1);
    assert_eq!((decisions[0].session, decisions[0].frame), (0, 0));
}

/// Satellite: the pool-level latency telemetry measures every warm
/// decision drained through `poll`/`flush` — compute per warm decision,
/// ingress-to-egress queueing per frame — and keeps its quantiles ordered.
#[test]
fn latency_stats_cover_drained_decisions() {
    let (pipeline, ds) = tiny_pipeline(37);
    let warm = pipeline.config.window.width.max(pipeline.config.gesture_window);
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::new(pipeline),
        ContextMode::Predicted,
        ServeConfig { workers: 2, threshold: 0.5, precision: Precision::F32 },
        3,
    );
    assert_eq!(pool.stats().compute.count, 0, "no decisions measured before any flush");
    assert_eq!(pool.stats().queue.count, 0);

    let frames = 2 * warm;
    for t in 0..frames {
        for s in 0..3 {
            pool.submit(s, &ds.demos[s].frames[t]).expect("Predicted mode");
        }
    }
    assert_eq!(pool.in_flight(), 3 * frames, "every submit is pending before the flush");
    let decisions = pool.flush();
    assert_eq!(pool.in_flight(), 0, "flush drains every pending decision");
    let warm_decisions = decisions.iter().filter(|d| d.output.is_some()).count();
    assert!(warm_decisions > 0, "sessions should have warmed up");

    let stats = pool.stats();
    assert_eq!(stats.compute.count, warm_decisions, "exactly the warm decisions are measured");
    assert_eq!(
        stats.queue.count,
        3 * frames,
        "every frame is measured ingress-to-egress, warm-up included"
    );
    let c = stats.compute;
    assert!(c.p50_ms <= c.p99_ms && c.p99_ms <= c.max_ms, "{c:?}");
    assert!(c.mean_ms > 0.0 && c.mean_ms.is_finite());
    let q = stats.queue;
    assert!(q.p50_ms <= q.p99_ms && q.p99_ms <= q.max_ms, "{q:?}");
    assert!(
        q.mean_ms >= c.mean_ms,
        "queueing (submit→drain) contains compute: {} < {}",
        q.mean_ms,
        c.mean_ms
    );
    let text = stats.to_string();
    assert!(text.contains("compute") && text.contains("queueing"), "{text}");

    pool.reset_stats();
    assert_eq!(pool.stats().compute.count, 0, "reset_stats clears the telemetry");
    assert_eq!(pool.stats().queue.count, 0);
}

/// `reset_session` on the sharded pool restores a cold session: the same
/// frames replayed after a reset produce bit-exactly the decisions of a
/// fresh session, and frame numbering restarts at 0.
#[test]
fn sharded_reset_session_replays_bit_equal() {
    let (pipeline, ds) = tiny_pipeline(53);
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::new(pipeline),
        ContextMode::Predicted,
        ServeConfig { workers: 2, threshold: 0.5, precision: Precision::F32 },
        3,
    );
    let frames = 48usize;
    let run = |pool: &mut ShardedMonitorPool| -> Vec<Vec<(usize, Key)>> {
        for t in 0..frames {
            for s in 0..3 {
                pool.submit(s, &ds.demos[s].frames[t]).expect("Predicted mode");
            }
        }
        let mut outs: Vec<Vec<(usize, Key)>> = vec![Vec::new(); 3];
        for d in pool.flush() {
            if let Some(o) = d.output {
                outs[d.session]
                    .push((d.frame, (o.gesture.index(), o.unsafe_probability.to_bits(), o.alert)));
            }
        }
        outs
    };

    let first = run(&mut pool);
    assert!(first.iter().any(|s| !s.is_empty()), "sessions should warm up");
    for s in 0..3 {
        pool.reset_session(s);
        assert_eq!(pool.frames_submitted(s), 0, "reset rewinds the frame counter");
    }
    let second = run(&mut pool);
    assert_eq!(first, second, "a reset session must replay bit-equal to a fresh one");
}

/// A deliberately stalled shard delays its decisions past a deadline-gated
/// drain; the late decisions still arrive (exactly once, in frame order) on
/// the next drain, and nothing is lost.
#[test]
fn drain_deadline_leaves_stalled_decisions_for_the_next_drain() {
    use std::time::{Duration, Instant};
    let (pipeline, ds) = tiny_pipeline(59);
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::new(pipeline),
        ContextMode::Predicted,
        ServeConfig { workers: 2, threshold: 0.5, precision: Precision::F32 },
        2, // session 0 -> shard 0, session 1 -> shard 1
    );
    pool.inject_stall(0, Duration::from_millis(150));
    for s in 0..2 {
        pool.submit(s, &ds.demos[s].frames[0]).expect("Predicted mode");
    }
    let mut out = Vec::new();
    let drained = pool.drain_deadline(Instant::now() + Duration::from_millis(30), &mut out);
    assert!(!drained, "the stalled shard cannot make the deadline");
    assert!(pool.in_flight() > 0, "the stalled frame is still pending");
    assert!(
        out.iter().all(|d| d.session != 0),
        "no decision from the stalled shard inside the budget"
    );

    // The late decision arrives on a later (generous) drain, exactly once.
    let fully = pool.drain_deadline(Instant::now() + Duration::from_secs(10), &mut out);
    assert!(fully, "late decisions arrive once the stall clears");
    assert_eq!(pool.in_flight(), 0);
    let from_stalled: Vec<_> = out.iter().filter(|d| d.session == 0).collect();
    assert_eq!(from_stalled.len(), 1, "the delayed frame produces exactly one decision");
    assert_eq!(from_stalled[0].frame, 0);
}

/// Fleet elasticity: removing a session mid-stream leaves every surviving
/// session's decision stream bit-identical to a pool that never saw the
/// removed one, the removed session's in-flight decisions still drain
/// (exactly one per submitted frame), and the freed slot is recycled by the
/// next `add_session` with a cold engine.
#[test]
fn remove_session_leaves_survivors_bit_identical() {
    let (pipeline, ds) = tiny_pipeline(71);
    let shared = Arc::new(pipeline);
    let cfg = ServeConfig { workers: 2, threshold: 0.5, precision: Precision::F32 };
    let frames = 60usize;
    let half = frames / 2;

    let collect = |pool: &mut ShardedMonitorPool, n: usize| -> Vec<Vec<Key>> {
        let mut outs: Vec<Vec<Key>> = vec![Vec::new(); n];
        for d in pool.flush() {
            if let Some(o) = d.output {
                outs[d.session].push((o.gesture.index(), o.unsafe_probability.to_bits(), o.alert));
            }
        }
        outs
    };

    // Elastic pool: three sessions, session 1 leaves at the halfway point
    // with frames still in flight (no drain before the removal).
    let mut pool =
        ShardedMonitorPool::with_sessions(Arc::clone(&shared), ContextMode::Predicted, cfg, 3);
    assert_eq!(pool.stats().occupancy, vec![2, 1], "3 sessions over 2 shards");
    for t in 0..half {
        for s in 0..3 {
            pool.submit(s, &ds.demos[s].frames[t]).expect("Predicted mode");
        }
    }
    pool.remove_session(1);
    assert!(!pool.is_live(1));
    assert_eq!(pool.session_count(), 2);
    assert_eq!(pool.sessions_opened(), 3, "ids are never reused");
    assert_eq!(pool.stats().occupancy, vec![2, 0], "the freed slot stops counting");
    for t in half..frames {
        for s in [0usize, 2] {
            pool.submit(s, &ds.demos[s].frames[t]).expect("Predicted mode");
        }
    }
    let mut elastic = collect(&mut pool, 3);
    let removed = elastic.remove(1);
    assert!(!removed.is_empty(), "in-flight decisions of the removed session still drain");

    // Reference pool: only the two survivors, same frame schedule.
    let mut reference_pool =
        ShardedMonitorPool::new(Arc::clone(&shared), ContextMode::Predicted, cfg);
    let a = reference_pool.add_session();
    let b = reference_pool.add_session();
    for t in 0..frames {
        reference_pool.submit(a, &ds.demos[0].frames[t]).expect("Predicted mode");
        reference_pool.submit(b, &ds.demos[2].frames[t]).expect("Predicted mode");
    }
    let reference = collect(&mut reference_pool, 2);
    assert_eq!(
        elastic,
        vec![reference[0].clone(), reference[1].clone()],
        "survivors must be bit-identical to a pool that never saw the removed session"
    );

    // The freed slot is recycled: the next add_session lands on the
    // just-freed shard and starts cold — bit-identical to a fresh pool.
    let id = pool.add_session();
    assert_eq!(id, 3, "session ids keep growing");
    assert_eq!(pool.stats().occupancy, vec![2, 1], "recycled slot fills the gap");
    for t in 0..half {
        pool.submit(id, &ds.demos[1].frames[t]).expect("Predicted mode");
    }
    let recycled = collect(&mut pool, 4).remove(3);
    let mut fresh_pool =
        ShardedMonitorPool::with_sessions(Arc::clone(&shared), ContextMode::Predicted, cfg, 1);
    for t in 0..half {
        fresh_pool.submit(0, &ds.demos[1].frames[t]).expect("Predicted mode");
    }
    let fresh = collect(&mut fresh_pool, 1).remove(0);
    assert_eq!(recycled, fresh, "a recycled slot must start as cold as a fresh pool");
}

/// Submitting to a removed session is a programming error and dies loud.
#[test]
#[should_panic(expected = "removed")]
fn submit_to_removed_session_panics() {
    let (pipeline, ds) = tiny_pipeline(73);
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::new(pipeline),
        ContextMode::Predicted,
        ServeConfig { workers: 2, threshold: 0.5, precision: Precision::F32 },
        2,
    );
    pool.remove_session(0);
    let _ = pool.submit(0, &ds.demos[0].frames[0]);
}
