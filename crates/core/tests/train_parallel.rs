//! Training-path smoke + determinism: `TrainedPipeline::train_stages` must
//! produce **bit-identical** weights for every stage-2 worker count.
//!
//! Each per-gesture classifier trains from its own derived seed
//! (`cfg.seed ^ (g + 1)`) with no shared mutable state, so parallelizing
//! over `serve::parallel_map` may only change which thread runs a job —
//! never what the job computes. This test is also the CI training smoke:
//! one tiny end-to-end `train_stages` run per worker count.

use context_monitor::{ContextMode, MonitorConfig, TrainStages, TrainedPipeline};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::FeatureSet;

#[test]
fn train_stages_is_bit_identical_for_any_worker_count() {
    let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(23));
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(5);
    cfg.train.epochs = 3;
    cfg.train_stride = 4;
    let idx: Vec<usize> = (0..ds.len()).collect();

    let (mut reference, ref_stats) = TrainedPipeline::train_stages(
        &ds,
        &idx,
        &cfg.clone().with_train_workers(1),
        TrainStages::ALL,
    );
    assert!(!reference.error_nets.is_empty(), "no dedicated classifiers trained");
    // The checkpoint embeds the config; neutralize the one field that is
    // *supposed* to differ so the comparison is purely about weights.
    let saved_with_workers_1 = |p: &mut TrainedPipeline| {
        let mut saved = p.save();
        saved.config.train_workers = 1;
        serde_json::to_string(&saved).expect("serialize pipeline")
    };
    let ref_json = saved_with_workers_1(&mut reference);
    let ref_run = reference.run_demo(&ds.demos[0], ContextMode::Predicted);

    for workers in [2usize, 3, 8] {
        let (mut p, stats) = TrainedPipeline::train_stages(
            &ds,
            &idx,
            &cfg.clone().with_train_workers(workers),
            TrainStages::ALL,
        );
        assert_eq!(stats, ref_stats, "stats differ at workers={workers}");
        let json = saved_with_workers_1(&mut p);
        assert_eq!(
            json, ref_json,
            "trained weights differ between 1 and {workers} training workers"
        );
        // And the composed pipeline behaves identically frame-for-frame.
        let run = p.run_demo(&ds.demos[0], ContextMode::Predicted);
        assert_eq!(run.gesture_pred, ref_run.gesture_pred, "workers={workers}");
        assert_eq!(run.unsafe_score, ref_run.unsafe_score, "workers={workers}");
    }
}
