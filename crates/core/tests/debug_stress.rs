#![cfg(debug_assertions)]
//! Debug-only stress: exercises the indexing-heavy serving paths — the
//! majority-filter ring bookkeeping, `parallel_map` chunk arithmetic, and
//! `step_batch`'s four-phase scatter/gather — with overflow and bounds
//! checks armed and deliberately ragged inputs. Release builds compile
//! this file out; the debug-profile `cargo test` step in CI runs it.

use context_monitor::{
    parallel_map, step_batch, BatchJob, BatchScratch, ContextMode, InferenceEngine, MajorityFilter,
    MonitorConfig, TrainedPipeline,
};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::{Dataset, FeatureSet};

/// Capacity/class boundary sweep: thousands of pushes through every small
/// filter geometry, including the degenerate capacity-1 and single-class
/// cases where the eviction arithmetic has the least slack.
#[test]
fn majority_filter_geometry_sweep() {
    let mut state = 0x1234_5678_9ABC_DEF1u64;
    for capacity in 1..=8 {
        for classes in 1..=6 {
            let mut filter = MajorityFilter::new(capacity, classes);
            for _ in 0..400 {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                let value = (state % classes as u64) as usize;
                let majority = filter.push(value);
                assert!(majority < classes, "majority {majority} out of range");
                assert_eq!(filter.majority(), Some(majority));
            }
        }
    }
}

/// Chunk-boundary sweep for `parallel_map`: item counts around and below
/// the worker count, including empty input, must partition exactly.
#[test]
fn parallel_map_ragged_partitions() {
    for items in [0usize, 1, 2, 3, 7, 13, 64] {
        for threads in [1usize, 2, 3, 5, 9] {
            let data: Vec<u64> = (0..items as u64).collect();
            let got = parallel_map(&data, threads, |&x| x * 2 + 1);
            let want: Vec<u64> = data.iter().map(|&x| x * 2 + 1).collect();
            assert_eq!(got, want, "items={items} threads={threads}");
        }
    }
}

fn tiny_pipeline(seed: u64) -> (TrainedPipeline, Dataset) {
    let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(seed));
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(seed ^ 0x5A);
    cfg.train.epochs = 1;
    cfg.train_stride = 8;
    let idx: Vec<usize> = (0..ds.len()).collect();
    (TrainedPipeline::train(&ds, &idx, &cfg), ds)
}

/// Ragged micro-batches: each tick submits a different, shuffled subset of
/// engines, so `step_batch`'s membership/readiness/pending index juggling
/// runs against every subset shape rather than the dense all-sessions tick
/// the equivalence suite covers.
#[test]
fn step_batch_ragged_membership() {
    let (pipeline, ds) = tiny_pipeline(7);
    let n = 3.min(ds.demos.len());
    let mut engines: Vec<InferenceEngine> =
        (0..n).map(|_| InferenceEngine::new(&pipeline, ContextMode::Predicted)).collect();
    let mut scratch = BatchScratch::new(&pipeline);
    let mut steps = Vec::new();

    let frames = ds.demos.iter().take(n).map(|d| d.len()).min().unwrap().min(40);
    let mut cursors = vec![0usize; n];
    for t in 0..frames {
        // Subset pattern cycles through singletons, pairs, and the full set.
        let members: Vec<usize> = match t % 4 {
            0 => vec![t % n],
            1 => (0..n).filter(|s| s % 2 == 0).collect(),
            2 => (0..n).filter(|s| s % 2 == 1).collect(),
            _ => (0..n).rev().collect(),
        };
        let jobs: Vec<BatchJob> = members
            .iter()
            .filter(|&&s| cursors[s] < ds.demos[s].len())
            .map(|&s| BatchJob {
                engine: s,
                frame: ds.demos[s].frames[cursors[s]].clone(),
                context: None,
            })
            .collect();
        for job in &jobs {
            cursors[job.engine] += 1;
        }
        if jobs.is_empty() {
            continue;
        }
        step_batch(&pipeline, &mut engines, &jobs, &mut scratch, &mut steps);
        assert_eq!(steps.len(), jobs.len(), "tick {t}: one step per job");
    }
}
