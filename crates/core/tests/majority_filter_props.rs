//! Property tests for `MajorityFilter`: random push sequences checked
//! against a brute-force recount oracle, pinning the earliest-seen
//! tie-break and the eviction behavior at capacity boundaries forever.

use context_monitor::MajorityFilter;
use proptest::prelude::*;

/// Brute-force oracle: most frequent value in a non-empty slice, the value
/// whose class first attains the maximal count winning ties — the exact
/// rule the historical `mode_of` recount enforced.
fn recount(values: &[usize]) -> usize {
    assert!(!values.is_empty());
    let mut counts = std::collections::BTreeMap::new();
    for &v in values {
        *counts.entry(v).or_insert(0usize) += 1;
    }
    let mut best = values[0];
    let mut best_n = 0usize;
    for &v in values {
        let n = counts[&v];
        if n > best_n {
            best = v;
            best_n = n;
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Every push returns exactly what a full recount over the trailing
    /// `capacity` values returns, for arbitrary capacities, class counts,
    /// and streams.
    #[test]
    fn push_matches_recount_oracle(
        capacity in 1usize..12,
        classes in 1usize..9,
        raw in prop::collection::vec(0usize..10_000, 1..120),
    ) {
        let stream: Vec<usize> = raw.iter().map(|r| r % classes).collect();
        let mut filter = MajorityFilter::new(capacity, classes);
        for (i, &v) in stream.iter().enumerate() {
            let got = filter.push(v);
            let lo = (i + 1).saturating_sub(capacity);
            let expected = recount(&stream[lo..=i]);
            prop_assert_eq!(
                got, expected,
                "capacity={}, classes={}, i={}, window={:?}",
                capacity, classes, i, &stream[lo..=i]
            );
            prop_assert_eq!(filter.majority(), Some(expected));
        }
    }

    /// The window never grows past its capacity, and exactly the oldest
    /// value is forgotten when it would: after `capacity` pushes of a
    /// second class, the first class is fully evicted.
    #[test]
    fn eviction_at_capacity_boundary(
        capacity in 1usize..10,
        fill in 1usize..20,
    ) {
        let mut filter = MajorityFilter::new(capacity, 2);
        for _ in 0..fill {
            filter.push(0);
            prop_assert!(filter.len() <= capacity);
        }
        prop_assert_eq!(filter.len(), fill.min(capacity));
        // Push `capacity` of class 1: every 0 must have been evicted, so 1
        // is the unambiguous majority.
        for _ in 0..capacity {
            filter.push(1);
        }
        prop_assert_eq!(filter.len(), capacity);
        prop_assert_eq!(filter.majority(), Some(1));
    }

    /// Ties break toward the class seen earliest in the *current window*,
    /// not earliest overall: construct an exact tie and compare to the
    /// oracle (which scans the window left to right).
    #[test]
    fn tie_break_is_earliest_seen_in_window(
        capacity in 2usize..10,
        raw in prop::collection::vec(0usize..2, 30..60),
    ) {
        let mut filter = MajorityFilter::new(capacity, 2);
        for (i, &v) in raw.iter().enumerate() {
            let got = filter.push(v);
            let lo = (i + 1).saturating_sub(capacity);
            let window = &raw[lo..=i];
            let ones = window.iter().filter(|&&x| x == 1).count();
            if 2 * ones == window.len() {
                // Exact tie: the winner must be the first value in the
                // window (earliest seen of the tied classes).
                prop_assert_eq!(got, window[0], "tied window {:?}", window);
            }
            prop_assert_eq!(got, recount(window));
        }
    }

    /// `clear` resets to a genuinely empty filter: no stale counts or
    /// tie-break state survive.
    #[test]
    fn clear_is_equivalent_to_fresh(
        capacity in 1usize..8,
        classes in 2usize..6,
        before in prop::collection::vec(0usize..100, 0..30),
        after in prop::collection::vec(0usize..100, 1..30),
    ) {
        let mut reused = MajorityFilter::new(capacity, classes);
        for &v in &before {
            reused.push(v % classes);
        }
        reused.clear();
        prop_assert!(reused.is_empty());
        prop_assert_eq!(reused.majority(), None);

        let mut fresh = MajorityFilter::new(capacity, classes);
        for &v in &after {
            prop_assert_eq!(reused.push(v % classes), fresh.push(v % classes));
        }
    }
}
