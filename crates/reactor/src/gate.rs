//! The alert/gating state machine, and the pool-fed decision gate.
//!
//! [`AlertGate`] is the debounce → engage → gate state machine extracted
//! from [`SafetyReactor`](crate::SafetyReactor) so that both deployment
//! shapes of the closed loop execute literally the same decision logic:
//!
//! * **in-process** — `SafetyReactor` steps a private
//!   [`InferenceEngine`](context_monitor::InferenceEngine) and feeds the
//!   gate synchronously (one robot, one engine);
//! * **pooled** — [`PooledReactor`] consumes [`Decision`]s produced by a
//!   shared [`ShardedMonitorPool`](context_monitor::serve::ShardedMonitorPool),
//!   so N guarded procedures ride one micro-batched serving tick.
//!
//! The pooled shape adds the one thing the in-process shape never needed: a
//! **deadline**. A pool decision travels ingress → shard → egress, and under
//! load (or a stalled shard) it can miss the tick it was meant to gate.
//! [`PooledReactor::apply`] therefore fails safe: when the decision for
//! frame `t - 1 - deadline_ticks` has not been applied by tick `t`'s
//! actuation, the commands are held at the **last un-gated setpoint** — an
//! unexamined plan command is never emitted — and the miss is counted. Late
//! decisions are applied exactly once, in frame order, when they arrive.

use crate::policy::{ConfigError, MitigationPolicy, ReactorConfig};
use context_monitor::serve::Decision;
use raven_sim::{CommandFilter, Commands};

/// The debounce/engage/gate state machine shared by the in-process and the
/// pooled reactor. Score events go in via [`AlertGate::on_score`]; each
/// tick's commands pass through [`AlertGate::gate_commands`].
#[derive(Debug, Clone)]
pub struct AlertGate {
    cfg: ReactorConfig,
    /// Alert frames seen (score above threshold).
    alerts: usize,
    /// Tick of the first alert frame.
    first_alert: Option<usize>,
    /// Current consecutive-alert streak.
    streak: usize,
    /// Tick from which gating is (or will be) active, once scheduled.
    gate_from: Option<usize>,
    /// Tick at which mitigation was first scheduled (never cleared; this is
    /// what "the reactor intervened" means for false-stop accounting).
    engaged: Option<usize>,
    /// Frozen command snapshot while gating.
    hold: Option<Commands>,
    /// Last commands that passed through un-gated.
    last_cmds: Option<Commands>,
    /// Ticks actually gated so far.
    ticks_gated: usize,
}

impl AlertGate {
    /// Creates the state machine for a validated configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the config fails [`ReactorConfig::validate`].
    pub fn new(cfg: ReactorConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self {
            cfg,
            alerts: 0,
            first_alert: None,
            streak: 0,
            gate_from: None,
            engaged: None,
            hold: None,
            last_cmds: None,
            ticks_gated: 0,
        })
    }

    /// The configuration this gate runs.
    pub fn config(&self) -> &ReactorConfig {
        &self.cfg
    }

    /// Alert frames seen (unsafe score above threshold).
    pub fn alerts(&self) -> usize {
        self.alerts
    }

    /// Tick of the first alert frame, if any — the timestamp reaction-time
    /// margins are measured from.
    pub fn first_alert_tick(&self) -> Option<usize> {
        self.first_alert
    }

    /// Tick at which mitigation was first scheduled (`None` for
    /// [`MitigationPolicy::LogOnly`] or when no alert was confirmed).
    pub fn engaged_tick(&self) -> Option<usize> {
        self.engaged
    }

    /// Ticks whose commands were actually gated so far.
    pub fn ticks_gated(&self) -> usize {
        self.ticks_gated
    }

    /// The last commands that passed through un-gated, if any — the
    /// setpoint a fail-safe hold freezes at.
    // lint: hot-path
    pub fn last_commands(&self) -> Option<Commands> {
        self.last_cmds
    }

    /// Clears all per-trial state so the gate can guard another trial.
    pub fn reset(&mut self) {
        self.alerts = 0;
        self.first_alert = None;
        self.streak = 0;
        self.gate_from = None;
        self.engaged = None;
        self.hold = None;
        self.last_cmds = None;
        self.ticks_gated = 0;
    }

    /// Feeds the score decision made from the state of `tick`: alert
    /// bookkeeping, debounce, and — once the streak confirms — scheduling
    /// of the mitigation gate.
    // lint: hot-path
    pub fn on_score(&mut self, tick: usize, alert: bool) {
        if !alert {
            self.streak = 0;
            return;
        }
        self.alerts += 1;
        if self.first_alert.is_none() {
            self.first_alert = Some(tick);
        }
        self.streak += 1;
        let engage =
            self.streak >= self.cfg.debounce && self.cfg.policy != MitigationPolicy::LogOnly;
        if engage && self.gate_from.is_none() {
            // A decision made from tick `t`'s state can first affect the
            // commands of tick `t + 1`; actuation latency stacks on top.
            let from = tick + 1 + self.cfg.actuation_latency;
            self.gate_from = Some(from);
            if self.engaged.is_none() {
                self.engaged = Some(from);
            }
        }
    }

    /// Gates (or passes through) the commands of `tick`.
    // lint: hot-path
    pub fn gate_commands(&mut self, tick: usize, commands: &mut Commands) {
        if self.gating_active(tick) {
            // Freeze at the last un-gated setpoint (falling back to the
            // current commands if gating engaged before any passed).
            let hold = match self.hold {
                Some(h) => h,
                None => {
                    let h = self.last_cmds.unwrap_or(*commands);
                    self.hold = Some(h);
                    h
                }
            };
            *commands = hold;
            self.ticks_gated += 1;
        } else {
            self.last_cmds = Some(*commands);
        }
    }

    /// Whether gating is active at `tick`, retiring an expired pause.
    // lint: hot-path
    fn gating_active(&mut self, tick: usize) -> bool {
        let Some(from) = self.gate_from else { return false };
        if tick < from {
            return false;
        }
        match self.cfg.policy {
            // LogOnly never schedules a gate, so `gate_from` stays None.
            MitigationPolicy::LogOnly => false,
            MitigationPolicy::StopAndHold => true,
            MitigationPolicy::PauseTicks(n) => {
                if tick < from + n {
                    true
                } else {
                    // Pause over: hand control back and allow a later
                    // confirmed alert to re-engage. The streak reset is
                    // load-bearing — without it, a streak accrued *during*
                    // the pause (the stream keeps alerting while gated)
                    // would instantly re-trigger mitigation on the first
                    // post-pause frame, and the hand-back would never
                    // actually hand anything back.
                    self.gate_from = None;
                    self.hold = None;
                    self.streak = 0;
                    false
                }
            }
        }
    }
}

/// A safety reactor fed by a shared serving pool instead of a private
/// engine: the fleet deployment shape, where gating decisions ride the
/// sharded micro-batched tick and a **per-tick deadline** guards against
/// decisions arriving too late to act on.
///
/// Wiring (one instance per guarded procedure / pool session):
///
/// 1. each tick, the driver calls [`apply`](PooledReactor::apply) (via
///    [`CommandFilter`]) on the tick's commands **before** stepping physics;
/// 2. the frame logged by the physics step goes to the pool
///    (`ShardedMonitorPool::submit`);
/// 3. the driver drains the pool (with a barrier or a deadline budget) and
///    routes this session's decisions into
///    [`on_decision`](PooledReactor::on_decision).
///
/// With every decision on time, the gating timeline is **bit-identical** to
/// an in-process [`SafetyReactor`](crate::SafetyReactor) over the same
/// frames (the pool's decisions are bit-exact to a sequential engine, and
/// both shapes share one [`AlertGate`]) — asserted by this crate's tests
/// and the fleet campaign's determinism gate. When a decision misses its
/// deadline, [`apply`](PooledReactor::apply) fails safe instead: commands
/// hold at the last un-gated setpoint until the late decision arrives, and
/// the miss is counted in [`deadline_misses`](PooledReactor::deadline_misses).
#[derive(Debug, Clone)]
pub struct PooledReactor {
    gate: AlertGate,
    /// Allowed decision lag in ticks beyond the structural one-tick sensing
    /// delay (0 = the decision for frame `t-1` must be in before tick `t`).
    deadline_ticks: usize,
    /// Decisions applied so far == the next expected frame index.
    decided: usize,
    /// Ticks whose commands were fail-safe-held because the required
    /// decision had not arrived.
    deadline_misses: usize,
    /// The setpoint held while failing safe (cleared when decisions catch
    /// up).
    failsafe_hold: Option<Commands>,
}

impl PooledReactor {
    /// Creates a pool-fed reactor with the given decision-deadline budget.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the config fails [`ReactorConfig::validate`].
    pub fn new(cfg: ReactorConfig, deadline_ticks: usize) -> Result<Self, ConfigError> {
        Ok(Self {
            gate: AlertGate::new(cfg)?,
            deadline_ticks,
            decided: 0,
            deadline_misses: 0,
            failsafe_hold: None,
        })
    }

    /// The underlying state machine (alert counts, engage tick, …).
    pub fn gate(&self) -> &AlertGate {
        &self.gate
    }

    /// Decisions applied so far (equals the frames scored on time plus the
    /// late ones already caught up).
    pub fn decisions_applied(&self) -> usize {
        self.decided
    }

    /// Ticks whose commands were fail-safe-held because their gating
    /// decision missed the deadline.
    pub fn deadline_misses(&self) -> usize {
        self.deadline_misses
    }

    /// Whether the last [`PooledReactor::apply`] failed safe (decisions
    /// were lagging past the deadline budget at that tick).
    pub fn failing_safe(&self) -> bool {
        self.failsafe_hold.is_some()
    }

    /// Clears all per-trial state so the reactor can guard another trial
    /// (pair with `ShardedMonitorPool::reset_session`).
    pub fn reset(&mut self) {
        self.gate.reset();
        self.decided = 0;
        self.deadline_misses = 0;
        self.failsafe_hold = None;
    }

    /// Applies one drained pool decision. Decisions must arrive in frame
    /// order, each exactly once — the pool guarantees per-session frame
    /// order, so a violation here is a routing bug in the driver.
    ///
    /// A late decision (drained after its tick was fail-safe-held) is
    /// applied here exactly once like any other: its alert still counts,
    /// and a confirmed streak schedules the gate from `frame + 1 +
    /// actuation_latency` — possibly already in the past, in which case
    /// gating begins at the very next [`PooledReactor::apply`].
    ///
    /// # Panics
    ///
    /// Panics when `decision.frame` is not the next expected frame.
    // lint: hot-path
    pub fn on_decision(&mut self, decision: &Decision) {
        assert_eq!(
            decision.frame, self.decided,
            "pool decisions must be routed in frame order exactly once"
        );
        self.decided += 1;
        let alert = decision
            .output
            .as_ref()
            .is_some_and(|o| o.unsafe_probability > self.gate.config().threshold);
        self.gate.on_score(decision.frame, alert);
    }
}

impl CommandFilter for PooledReactor {
    /// Gates the commands of `tick`, failing safe when the decision for
    /// frame `tick - 1 - deadline_ticks` has not been applied yet.
    // lint: hot-path
    fn apply(&mut self, tick: usize, _progress: f32, commands: &mut Commands) {
        if let Some(required_frame) = tick.checked_sub(1 + self.deadline_ticks) {
            if self.decided <= required_frame {
                // Deadline miss: the gating decision is still in flight.
                // Never emit an unexamined plan command — hold the last
                // un-gated setpoint until decisions catch up.
                self.deadline_misses += 1;
                let hold = *self
                    .failsafe_hold
                    .get_or_insert_with(|| self.gate.last_commands().unwrap_or(*commands));
                *commands = hold;
                return;
            }
        }
        self.failsafe_hold = None;
        self.gate.gate_commands(tick, commands);
    }

    // `observe` stays the default no-op: frames reach the model through the
    // pool (`ShardedMonitorPool::submit`), not through this filter.
}

#[cfg(test)]
mod tests {
    use super::*;
    use context_monitor::ContextMode;
    use raven_sim::ArmCommand;

    fn cmds(x: f32) -> Commands {
        let arm = ArmCommand {
            position: kinematics::Vec3::new(x, 0.0, 0.0),
            grasper: 0.1,
            euler: (0.0, 0.0, 0.0),
        };
        Commands { arms: [arm, arm] }
    }

    fn decision(frame: usize, score: Option<f32>) -> Decision {
        Decision {
            session: 0,
            frame,
            output: score.map(|s| context_monitor::MonitorOutput {
                gesture: gestures::Gesture::G2,
                unsafe_probability: s,
                alert: s > 0.5,
                compute_ms: 0.1,
            }),
        }
    }

    fn reactor(deadline_ticks: usize) -> PooledReactor {
        PooledReactor::new(
            ReactorConfig { debounce: 2, actuation_latency: 0, ..ReactorConfig::default() },
            deadline_ticks,
        )
        .expect("valid config")
    }

    #[test]
    fn invalid_configs_are_typed_errors() {
        assert_eq!(
            PooledReactor::new(ReactorConfig { threshold: 0.0, ..Default::default() }, 0)
                .unwrap_err(),
            ConfigError::Threshold(0.0)
        );
        assert_eq!(
            PooledReactor::new(ReactorConfig { debounce: 0, ..Default::default() }, 0).unwrap_err(),
            ConfigError::ZeroDebounce
        );
        assert_eq!(
            PooledReactor::new(
                ReactorConfig { mode: ContextMode::Perfect, ..Default::default() },
                0
            )
            .unwrap_err(),
            ConfigError::PerfectContext
        );
    }

    #[test]
    fn on_time_decisions_gate_like_the_state_machine_says() {
        let mut r = reactor(0);
        // Tick 0 needs no decision yet.
        let mut c = cmds(0.0);
        r.apply(0, 0.0, &mut c);
        assert_eq!(c, cmds(0.0));
        // Warm-up decision (no output) keeps the stream flowing.
        r.on_decision(&decision(0, None));
        let mut c = cmds(1.0);
        r.apply(1, 0.0, &mut c);
        assert_eq!(c, cmds(1.0));
        r.on_decision(&decision(1, Some(0.9)));
        // One alert < debounce 2: not engaged yet.
        let mut c = cmds(2.0);
        r.apply(2, 0.0, &mut c);
        assert_eq!(c, cmds(2.0));
        r.on_decision(&decision(2, Some(0.9)));
        // Streak confirmed at frame 2 → gate from tick 3 (latency 0).
        assert_eq!(r.gate().engaged_tick(), Some(3));
        let mut c = cmds(3.0);
        r.apply(3, 0.0, &mut c);
        assert_eq!(c, cmds(2.0), "held at the last un-gated setpoint");
        assert_eq!(r.deadline_misses(), 0);
    }

    #[test]
    fn missing_decision_fails_safe_and_late_arrival_is_applied_once() {
        let mut r = reactor(0);
        let mut c = cmds(0.0);
        r.apply(0, 0.0, &mut c); // no decision required yet
                                 // Decision for frame 0 never drained: tick 1 must fail safe on the
                                 // last un-gated setpoint, not emit the plan.
        let mut c = cmds(1.0);
        r.apply(1, 0.0, &mut c);
        assert_eq!(c, cmds(0.0), "fail-safe hold, never an un-gated command");
        assert!(r.failing_safe());
        assert_eq!(r.deadline_misses(), 1);
        // Still missing at tick 2: the hold persists.
        let mut c = cmds(2.0);
        r.apply(2, 0.0, &mut c);
        assert_eq!(c, cmds(0.0));
        assert_eq!(r.deadline_misses(), 2);

        // The late decisions arrive (frames 0..=2 — physics kept stepping
        // during the hold, so held ticks still produced frames), each
        // applied exactly once.
        r.on_decision(&decision(0, Some(0.9)));
        r.on_decision(&decision(1, Some(0.9)));
        r.on_decision(&decision(2, Some(0.9)));
        assert_eq!(r.decisions_applied(), 3);
        // Streak confirmed at frame 1 → gate from tick 2, already past:
        // tick 3 is mitigation-gated (not fail-safe-held).
        let mut c = cmds(3.0);
        r.apply(3, 0.0, &mut c);
        assert!(!r.failing_safe(), "decisions caught up");
        assert_eq!(c, cmds(0.0), "late-confirmed mitigation gates immediately");
        assert_eq!(r.gate().ticks_gated(), 1);
        assert_eq!(r.deadline_misses(), 2, "no further misses once caught up");
    }

    #[test]
    fn deadline_budget_tolerates_allowed_lag() {
        let mut r = reactor(1); // one extra tick of allowed lag
        let mut c = cmds(0.0);
        r.apply(0, 0.0, &mut c);
        let mut c = cmds(1.0);
        r.apply(1, 0.0, &mut c);
        assert_eq!(c, cmds(1.0), "frame 0's decision may lag one tick");
        assert_eq!(r.deadline_misses(), 0);
        let mut c = cmds(2.0);
        r.apply(2, 0.0, &mut c);
        assert_eq!(c, cmds(1.0), "two ticks of lag exceeds the budget");
        assert_eq!(r.deadline_misses(), 1);
    }

    #[test]
    #[should_panic(expected = "frame order")]
    fn out_of_order_decision_is_rejected() {
        let mut r = reactor(0);
        r.on_decision(&decision(1, None));
    }

    #[test]
    #[should_panic(expected = "frame order")]
    fn duplicate_decision_is_rejected() {
        let mut r = reactor(0);
        r.on_decision(&decision(0, None));
        r.on_decision(&decision(0, None));
    }

    #[test]
    fn reset_restores_a_cold_gate() {
        let mut r = reactor(0);
        r.apply(0, 0.0, &mut cmds(0.0));
        r.on_decision(&decision(0, Some(0.9)));
        r.apply(1, 0.0, &mut cmds(1.0));
        r.apply(2, 0.0, &mut cmds(2.0)); // miss (frame 1 undecided)
        assert!(r.deadline_misses() > 0);
        r.reset();
        assert_eq!(r.decisions_applied(), 0);
        assert_eq!(r.deadline_misses(), 0);
        assert!(!r.failing_safe());
        assert_eq!(r.gate().alerts(), 0);
        assert_eq!(r.gate().first_alert_tick(), None);
    }
}
