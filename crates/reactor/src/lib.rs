//! # `reactor` — the closed-loop safety reactor
//!
//! Everything upstream of this crate *detects*: the [`context_monitor`]
//! pipeline scores each sliding window, the serving layer fans sessions
//! across threads, and the `faults` campaigns tally how often injected
//! faults manifest as unsafe events. This crate *acts*: a
//! [`SafetyReactor`] sits in the simulated robot's command path (it
//! implements [`raven_sim::CommandFilter`]), streams every tick's kinematic
//! frame through the allocation-free
//! [`InferenceEngine`](context_monitor::InferenceEngine), and on alert
//! applies a configurable [`MitigationPolicy`] to the command stream — the
//! paper's motivating deployment ("the monitor can be deployed … at the
//! last computational stage in the robot control system", Fig. 4, following
//! the monitor-in-the-control-loop architecture of arXiv:1901.09802).
//!
//! Timing is honest by construction:
//!
//! * **Sensing delay** — the simulator delivers tick `t`'s state via
//!   [`CommandFilter::observe`](raven_sim::CommandFilter::observe) *after*
//!   the physics step, so a decision made from it can first gate the
//!   commands of tick `t + 1`.
//! * **Actuation latency** — [`ReactorConfig::actuation_latency`] models
//!   the ticks between the engage decision and commands actually gating
//!   (command queues, brake engagement). The closed-loop campaign
//!   (`faults::run_closed_loop_campaign`) reports **detection** margins
//!   (first alert → counterfactual unsafe event, the paper's reaction-time
//!   convention); both delays then genuinely elapse before commands gate,
//!   so the *prevention* outcome — did the stop land in time? — prices
//!   them in.
//!
//! The per-tick path ([`SafetyReactor::observe`] +
//! [`SafetyReactor::apply`]) performs **no heap allocation** in steady
//! state — proven by the workspace counting-allocator test
//! (`tests/alloc_free_hot_path.rs`), which measures the reactor with its
//! mitigation engaged.
//!
//! ```no_run
//! use context_monitor::{ContextMode, TrainedPipeline};
//! use raven_sim::{run_block_transfer, SimConfig};
//! use reactor::{MitigationPolicy, ReactorConfig, SafetyReactor};
//! use std::sync::Arc;
//!
//! # fn pipeline() -> TrainedPipeline { unimplemented!() }
//! let pipeline = Arc::new(pipeline());
//! let cfg = ReactorConfig { policy: MitigationPolicy::StopAndHold, ..ReactorConfig::default() };
//! let mut reactor = SafetyReactor::new(pipeline, cfg);
//! let trial = run_block_transfer(&SimConfig::fast(7), &mut reactor);
//! if let Some(t) = reactor.engaged_tick() {
//!     println!("safety stop engaged at tick {t} (first alert {:?})", reactor.first_alert_tick());
//! }
//! ```

#![warn(missing_docs)]

pub mod gate;
pub mod policy;
pub mod safety;

pub use gate::{AlertGate, PooledReactor};
pub use policy::{ConfigError, MitigationPolicy, ReactorConfig};
pub use safety::{Guarded, SafetyReactor};
