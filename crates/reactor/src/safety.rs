//! The reactor itself: an [`InferenceEngine`] in the command path.

use crate::policy::{MitigationPolicy, ReactorConfig};
use context_monitor::{ContextMode, InferenceEngine, TrainedPipeline};
use kinematics::KinematicSample;
use raven_sim::{CommandFilter, Commands};
use std::sync::Arc;

/// A safety monitor closed around the robot's command stream.
///
/// As a [`CommandFilter`], the reactor receives every logged kinematic
/// frame via [`observe`](CommandFilter::observe) (the sensing path) and
/// every tick's commands via [`apply`](CommandFilter::apply) (the actuation
/// path). Each observed frame is stepped through the shared allocation-free
/// [`InferenceEngine`]; once the unsafe score exceeds the threshold for
/// [`ReactorConfig::debounce`] consecutive frames, the configured
/// [`MitigationPolicy`] is scheduled and — after
/// [`ReactorConfig::actuation_latency`] further ticks — gates the command
/// stream.
///
/// Compose with a fault injector via [`Guarded`] to run the paper's
/// injections *through* the reactor (the monitored twin of the closed-loop
/// campaign).
pub struct SafetyReactor {
    pipeline: Arc<TrainedPipeline>,
    engine: InferenceEngine,
    cfg: ReactorConfig,
    /// Ticks observed since construction / the last reset.
    ticks_seen: usize,
    /// Alert frames seen (score above threshold).
    alerts: usize,
    /// Tick of the first alert frame.
    first_alert: Option<usize>,
    /// Current consecutive-alert streak.
    streak: usize,
    /// Tick from which gating is (or will be) active, once scheduled.
    gate_from: Option<usize>,
    /// Tick at which mitigation was first scheduled (never cleared; this is
    /// what "the reactor intervened" means for false-stop accounting).
    engaged: Option<usize>,
    /// Frozen command snapshot while gating.
    hold: Option<Commands>,
    /// Last commands that passed through un-gated.
    last_cmds: Option<Commands>,
    /// Ticks actually gated so far.
    ticks_gated: usize,
}

impl SafetyReactor {
    /// Creates a reactor over a shared trained pipeline.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is not within `(0, 1)`, if `debounce == 0`,
    /// or if the mode is [`ContextMode::Perfect`] (an in-loop reactor has
    /// no oracle gesture boundaries to supply).
    pub fn new(pipeline: Arc<TrainedPipeline>, cfg: ReactorConfig) -> Self {
        assert!(cfg.threshold > 0.0 && cfg.threshold < 1.0, "threshold must be in (0,1)");
        assert!(cfg.debounce >= 1, "debounce must be at least 1 frame");
        assert!(
            cfg.mode != ContextMode::Perfect,
            "SafetyReactor cannot run in ContextMode::Perfect: the control loop has no \
             external gesture oracle (use Predicted or NoContext)"
        );
        let engine = InferenceEngine::new(&pipeline, cfg.mode);
        Self {
            pipeline,
            engine,
            cfg,
            ticks_seen: 0,
            alerts: 0,
            first_alert: None,
            streak: 0,
            gate_from: None,
            engaged: None,
            hold: None,
            last_cmds: None,
            ticks_gated: 0,
        }
    }

    /// The configuration this reactor runs.
    pub fn config(&self) -> &ReactorConfig {
        &self.cfg
    }

    /// The shared pipeline.
    pub fn pipeline(&self) -> &Arc<TrainedPipeline> {
        &self.pipeline
    }

    /// Ticks observed since construction or the last reset.
    pub fn ticks_seen(&self) -> usize {
        self.ticks_seen
    }

    /// Alert frames seen (unsafe score above threshold).
    pub fn alerts(&self) -> usize {
        self.alerts
    }

    /// Tick of the first alert frame, if any — the timestamp reaction-time
    /// margins are measured from.
    pub fn first_alert_tick(&self) -> Option<usize> {
        self.first_alert
    }

    /// Tick at which mitigation was first scheduled (`None` for
    /// [`MitigationPolicy::LogOnly`] or when no alert was confirmed).
    pub fn engaged_tick(&self) -> Option<usize> {
        self.engaged
    }

    /// Ticks whose commands were actually gated so far.
    pub fn ticks_gated(&self) -> usize {
        self.ticks_gated
    }

    /// Clears all per-trial state (engine windows, smoothing filter, alert
    /// and gating bookkeeping) so the reactor can guard another trial.
    pub fn reset(&mut self) {
        self.engine.reset();
        self.ticks_seen = 0;
        self.alerts = 0;
        self.first_alert = None;
        self.streak = 0;
        self.gate_from = None;
        self.engaged = None;
        self.hold = None;
        self.last_cmds = None;
        self.ticks_gated = 0;
    }

    /// Whether gating is active at `tick`, retiring an expired pause.
    fn gating_active(&mut self, tick: usize) -> bool {
        let Some(from) = self.gate_from else { return false };
        if tick < from {
            return false;
        }
        match self.cfg.policy {
            // LogOnly never schedules a gate, so `gate_from` stays None.
            MitigationPolicy::LogOnly => false,
            MitigationPolicy::StopAndHold => true,
            MitigationPolicy::PauseTicks(n) => {
                if tick < from + n {
                    true
                } else {
                    // Pause over: hand control back and allow a later
                    // confirmed alert to re-engage.
                    self.gate_from = None;
                    self.hold = None;
                    self.streak = 0;
                    false
                }
            }
        }
    }
}

impl CommandFilter for SafetyReactor {
    fn apply(&mut self, tick: usize, _progress: f32, commands: &mut Commands) {
        if self.gating_active(tick) {
            // Freeze at the last un-gated setpoint (falling back to the
            // current commands if gating engaged before any passed).
            let hold = match self.hold {
                Some(h) => h,
                None => {
                    let h = self.last_cmds.unwrap_or(*commands);
                    self.hold = Some(h);
                    h
                }
            };
            *commands = hold;
            self.ticks_gated += 1;
        } else {
            self.last_cmds = Some(*commands);
        }
    }

    fn observe(&mut self, tick: usize, state: &KinematicSample) {
        self.ticks_seen += 1;
        let step = self
            .engine
            .step(&self.pipeline, state)
            .expect("non-Perfect mode enforced at construction");
        let alert = step.unsafe_score.is_some_and(|s| s > self.cfg.threshold);
        if !alert {
            self.streak = 0;
            return;
        }
        self.alerts += 1;
        if self.first_alert.is_none() {
            self.first_alert = Some(tick);
        }
        self.streak += 1;
        let engage =
            self.streak >= self.cfg.debounce && self.cfg.policy != MitigationPolicy::LogOnly;
        if engage && self.gate_from.is_none() {
            // A decision made from tick `t`'s state can first affect the
            // commands of tick `t + 1`; actuation latency stacks on top.
            let from = tick + 1 + self.cfg.actuation_latency;
            self.gate_from = Some(from);
            if self.engaged.is_none() {
                self.engaged = Some(from);
            }
        }
    }
}

/// A fault injector and a reactor sharing one command path, in the order of
/// the real system: faults corrupt the trajectory packets first, then the
/// reactor — "the last computational stage in the robot control system" —
/// gets the final word.
pub struct Guarded<F> {
    /// The upstream filter (typically a `faults::FaultInjector`).
    pub fault: F,
    /// The reactor guarding the stream.
    pub reactor: SafetyReactor,
}

impl<F: CommandFilter> Guarded<F> {
    /// Composes `fault` upstream of `reactor`.
    pub fn new(fault: F, reactor: SafetyReactor) -> Self {
        Self { fault, reactor }
    }
}

impl<F: CommandFilter> CommandFilter for Guarded<F> {
    fn apply(&mut self, tick: usize, progress: f32, commands: &mut Commands) {
        self.fault.apply(tick, progress, commands);
        self.reactor.apply(tick, progress, commands);
    }

    fn observe(&mut self, tick: usize, state: &KinematicSample) {
        self.fault.observe(tick, state);
        self.reactor.observe(tick, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use context_monitor::MonitorConfig;
    use gestures::Task;
    use jigsaws::{generate, GeneratorConfig};
    use kinematics::{Dataset, FeatureSet};
    use raven_sim::ArmCommand;

    fn trained() -> (Arc<TrainedPipeline>, Dataset) {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(61));
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(13);
        cfg.train.epochs = 2;
        cfg.train_stride = 6;
        let idx: Vec<usize> = (0..ds.len()).collect();
        (Arc::new(TrainedPipeline::train(&ds, &idx, &cfg)), ds)
    }

    fn plan_commands(p: f32) -> Commands {
        let arm = ArmCommand {
            position: kinematics::Vec3::new(10.0 * p, -5.0 * p, 20.0),
            grasper: 0.12,
            euler: (0.0, 0.0, 0.0),
        };
        Commands { arms: [arm, arm] }
    }

    /// Drives `reactor` over a demo's frames like the simulator would:
    /// apply tick t, then observe tick t. Returns the commands each tick
    /// actually carried.
    fn drive(reactor: &mut SafetyReactor, ds: &Dataset, n: usize) -> Vec<Commands> {
        let demo = &ds.demos[0];
        let mut out = Vec::new();
        for t in 0..n.min(demo.len()) {
            let p = t as f32 / (n - 1) as f32;
            let mut cmds = plan_commands(p);
            reactor.apply(t, p, &mut cmds);
            reactor.observe(t, &demo.frames[t]);
            out.push(cmds);
        }
        out
    }

    fn trigger_happy(policy: MitigationPolicy) -> ReactorConfig {
        // A threshold this low alerts on every warm frame, making the
        // engage timeline deterministic regardless of what the tiny test
        // model learned.
        ReactorConfig {
            threshold: 1e-6,
            debounce: 2,
            actuation_latency: 3,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn log_only_never_touches_commands() {
        let (pipeline, ds) = trained();
        let mut reactor = SafetyReactor::new(pipeline, trigger_happy(MitigationPolicy::LogOnly));
        let n = 60;
        let carried = drive(&mut reactor, &ds, n);
        for (t, cmds) in carried.iter().enumerate() {
            assert_eq!(*cmds, plan_commands(t as f32 / (n - 1) as f32), "tick {t} mutated");
        }
        assert!(reactor.alerts() > 0, "trigger-happy threshold should alert");
        assert_eq!(reactor.engaged_tick(), None);
        assert_eq!(reactor.ticks_gated(), 0);
    }

    #[test]
    fn stop_and_hold_freezes_commands_after_latency() {
        let (pipeline, ds) = trained();
        let cfg = trigger_happy(MitigationPolicy::StopAndHold);
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let n = 80;
        let carried = drive(&mut reactor, &ds, n);

        let warm = pipeline.config.window.width.max(pipeline.config.gesture_window);
        // First score (and alert) at tick warm-1; debounce confirms one
        // frame later; gate engages after 1 tick of sensing delay plus the
        // modeled actuation latency.
        let confirm = warm - 1 + (cfg.debounce - 1);
        let expect_gate = confirm + 1 + cfg.actuation_latency;
        assert_eq!(reactor.first_alert_tick(), Some(warm - 1));
        assert_eq!(reactor.engaged_tick(), Some(expect_gate));

        // Before the gate: plan passes through. From the gate on: frozen at
        // the last un-gated setpoint.
        let held = carried[expect_gate - 1];
        for (t, cmds) in carried.iter().enumerate() {
            if t < expect_gate {
                assert_eq!(*cmds, plan_commands(t as f32 / (n - 1) as f32), "tick {t}");
            } else {
                assert_eq!(*cmds, held, "tick {t} should hold the pre-gate setpoint");
            }
        }
        assert_eq!(reactor.ticks_gated(), n - expect_gate);
    }

    #[test]
    fn pause_hands_control_back_after_n_ticks() {
        let (pipeline, ds) = trained();
        let pause = 5usize;
        let cfg = trigger_happy(MitigationPolicy::PauseTicks(pause));
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let n = 80;
        let carried = drive(&mut reactor, &ds, n);

        let gate = reactor.engaged_tick().expect("pause engages");
        // Gated for exactly `pause` ticks...
        let held = carried[gate - 1];
        for (t, cmds) in carried.iter().enumerate().skip(gate).take(pause) {
            assert_eq!(*cmds, held, "tick {t} inside the pause");
        }
        // ...then the plan flows again (until the still-alerting stream
        // re-engages after another debounce run-up).
        let resume = gate + pause;
        assert_eq!(carried[resume], plan_commands(resume as f32 / (n - 1) as f32));
        assert!(reactor.ticks_gated() > pause, "trigger-happy stream re-engages the pause");
    }

    #[test]
    fn reset_restores_a_cold_reactor() {
        let (pipeline, ds) = trained();
        let cfg = trigger_happy(MitigationPolicy::StopAndHold);
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let first = drive(&mut reactor, &ds, 70);
        assert!(reactor.engaged_tick().is_some());

        reactor.reset();
        assert_eq!(reactor.ticks_seen(), 0);
        assert_eq!(reactor.alerts(), 0);
        assert_eq!(reactor.first_alert_tick(), None);
        assert_eq!(reactor.engaged_tick(), None);
        assert_eq!(reactor.ticks_gated(), 0);

        // A reset reactor replays the exact same trajectory as a fresh one.
        let second = drive(&mut reactor, &ds, 70);
        assert_eq!(first, second, "post-reset run must be bit-equal to the first");
    }

    #[test]
    #[should_panic(expected = "Perfect")]
    fn perfect_mode_is_rejected_at_construction() {
        let (pipeline, _) = trained();
        let cfg = ReactorConfig { mode: ContextMode::Perfect, ..ReactorConfig::default() };
        let _ = SafetyReactor::new(pipeline, cfg);
    }

    #[test]
    fn guarded_runs_fault_before_reactor() {
        struct Offset;
        impl CommandFilter for Offset {
            fn apply(&mut self, _t: usize, _p: f32, c: &mut Commands) {
                c.arms[1].grasper += 1.0;
            }
        }
        let (pipeline, ds) = trained();
        let mut guarded = Guarded::new(
            Offset,
            SafetyReactor::new(pipeline, trigger_happy(MitigationPolicy::StopAndHold)),
        );
        let demo = &ds.demos[0];
        let mut frozen: Option<Commands> = None;
        for t in 0..70 {
            let mut cmds = plan_commands(t as f32 / 69.0);
            guarded.apply(t, t as f32 / 69.0, &mut cmds);
            guarded.observe(t, &demo.frames[t]);
            match guarded.reactor.engaged_tick() {
                Some(gate) if t >= gate => {
                    // Held commands are the *faulted* stream: the reactor is
                    // downstream of the injector, like the real system.
                    let f = *frozen.get_or_insert(cmds);
                    assert_eq!(cmds, f, "tick {t}");
                    assert!((f.arms[1].grasper - 1.12).abs() < 1e-6);
                }
                _ => assert!((cmds.arms[1].grasper - 1.12).abs() < 1e-6, "fault applies"),
            }
        }
        assert!(frozen.is_some(), "reactor should have engaged");
    }
}
