//! The reactor itself: an [`InferenceEngine`] in the command path.

use crate::gate::AlertGate;
use crate::policy::{ConfigError, ReactorConfig};
use context_monitor::{InferenceEngine, TrainedPipeline};
use kinematics::KinematicSample;
use raven_sim::{CommandFilter, Commands};
use std::sync::Arc;

/// A safety monitor closed around the robot's command stream.
///
/// As a [`CommandFilter`], the reactor receives every logged kinematic
/// frame via [`observe`](CommandFilter::observe) (the sensing path) and
/// every tick's commands via [`apply`](CommandFilter::apply) (the actuation
/// path). Each observed frame is stepped through the shared allocation-free
/// [`InferenceEngine`]; once the unsafe score exceeds the threshold for
/// [`ReactorConfig::debounce`] consecutive frames, the configured
/// [`MitigationPolicy`] is scheduled and — after
/// [`ReactorConfig::actuation_latency`] further ticks — gates the command
/// stream.
///
/// Compose with a fault injector via [`Guarded`] to run the paper's
/// injections *through* the reactor (the monitored twin of the closed-loop
/// campaign).
pub struct SafetyReactor {
    pipeline: Arc<TrainedPipeline>,
    engine: InferenceEngine,
    /// The debounce/engage/gate state machine — shared, literally, with the
    /// pool-fed [`PooledReactor`](crate::PooledReactor).
    gate: AlertGate,
    /// Ticks observed since construction / the last reset.
    ticks_seen: usize,
}

impl SafetyReactor {
    /// Creates a reactor over a shared trained pipeline.
    ///
    /// # Errors
    ///
    /// [`ConfigError`] when the configuration fails
    /// [`ReactorConfig::validate_for`] — threshold outside `(0, 1)`,
    /// `debounce == 0` or beyond the pipeline warm-up, or
    /// [`ContextMode::Perfect`](context_monitor::ContextMode::Perfect) (an
    /// in-loop reactor has no oracle gesture boundaries to supply). A fleet
    /// campaign sweeping configurations handles the error; it is never a
    /// process-killing panic.
    pub fn try_new(
        pipeline: Arc<TrainedPipeline>,
        cfg: ReactorConfig,
    ) -> Result<Self, ConfigError> {
        cfg.validate_for(&pipeline)?;
        let engine = InferenceEngine::with_precision(&pipeline, cfg.mode, cfg.precision);
        Ok(Self { pipeline, engine, gate: AlertGate::new(cfg)?, ticks_seen: 0 })
    }

    /// [`SafetyReactor::try_new`], panicking on an invalid configuration.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`] message if the threshold is not
    /// within `(0, 1)`, if `debounce == 0` or exceeds the pipeline warm-up,
    /// or if the mode is `ContextMode::Perfect`.
    pub fn new(pipeline: Arc<TrainedPipeline>, cfg: ReactorConfig) -> Self {
        // lint: allow(panic, reason = "documented panicking constructor; fallible path is try_new")
        Self::try_new(pipeline, cfg).unwrap_or_else(|e| panic!("invalid ReactorConfig: {e}"))
    }

    /// The configuration this reactor runs.
    pub fn config(&self) -> &ReactorConfig {
        self.gate.config()
    }

    /// The shared pipeline.
    pub fn pipeline(&self) -> &Arc<TrainedPipeline> {
        &self.pipeline
    }

    /// Ticks observed since construction or the last reset.
    pub fn ticks_seen(&self) -> usize {
        self.ticks_seen
    }

    /// Alert frames seen (unsafe score above threshold).
    pub fn alerts(&self) -> usize {
        self.gate.alerts()
    }

    /// Tick of the first alert frame, if any — the timestamp reaction-time
    /// margins are measured from.
    pub fn first_alert_tick(&self) -> Option<usize> {
        self.gate.first_alert_tick()
    }

    /// Tick at which mitigation was first scheduled (`None` for
    /// [`MitigationPolicy::LogOnly`](crate::MitigationPolicy::LogOnly) or
    /// when no alert was confirmed).
    pub fn engaged_tick(&self) -> Option<usize> {
        self.gate.engaged_tick()
    }

    /// Ticks whose commands were actually gated so far.
    pub fn ticks_gated(&self) -> usize {
        self.gate.ticks_gated()
    }

    /// Clears all per-trial state (engine windows, smoothing filter, alert
    /// and gating bookkeeping) so the reactor can guard another trial.
    pub fn reset(&mut self) {
        self.engine.reset();
        self.gate.reset();
        self.ticks_seen = 0;
    }
}

impl CommandFilter for SafetyReactor {
    // lint: hot-path
    fn apply(&mut self, tick: usize, _progress: f32, commands: &mut Commands) {
        self.gate.gate_commands(tick, commands);
    }

    // lint: hot-path
    fn observe(&mut self, tick: usize, state: &KinematicSample) {
        self.ticks_seen += 1;
        let step = self
            .engine
            .step(&self.pipeline, state)
            // lint: allow(panic, reason = "CommandFilter::observe cannot return Result; Perfect mode is rejected by try_new, so step cannot fail")
            .expect("non-Perfect mode enforced at construction");
        // Alert on the *complete* decision product — the same
        // (gesture, score) pair the serving pool emits as `MonitorOutput` —
        // so the in-process and pool-fed reactors share one timeline in
        // every mode. In `NoContext` mode the error stage can warm before
        // the gesture stage; a score from that gap is not yet a decision
        // either deployment shape may act on (an earlier revision alerted
        // on the raw score here, silently diverging from the pooled shape
        // for exactly those warm-up ticks).
        let alert = step.complete().is_some_and(|(_, s)| s > self.config().threshold);
        self.gate.on_score(tick, alert);
    }
}

/// A fault injector and a reactor sharing one command path, in the order of
/// the real system: faults corrupt the trajectory packets first, then the
/// reactor — "the last computational stage in the robot control system" —
/// gets the final word.
///
/// The reactor defaults to the in-process [`SafetyReactor`]; the fleet
/// campaign instantiates it with a pool-fed
/// [`PooledReactor`](crate::PooledReactor) instead.
pub struct Guarded<F, R = SafetyReactor> {
    /// The upstream filter (typically a `faults::FaultInjector`).
    pub fault: F,
    /// The reactor guarding the stream.
    pub reactor: R,
}

impl<F: CommandFilter, R: CommandFilter> Guarded<F, R> {
    /// Composes `fault` upstream of `reactor`.
    pub fn new(fault: F, reactor: R) -> Self {
        Self { fault, reactor }
    }
}

impl<F: CommandFilter, R: CommandFilter> CommandFilter for Guarded<F, R> {
    fn apply(&mut self, tick: usize, progress: f32, commands: &mut Commands) {
        self.fault.apply(tick, progress, commands);
        self.reactor.apply(tick, progress, commands);
    }

    fn observe(&mut self, tick: usize, state: &KinematicSample) {
        self.fault.observe(tick, state);
        self.reactor.observe(tick, state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MitigationPolicy;
    use context_monitor::{ContextMode, MonitorConfig};
    use gestures::Task;
    use jigsaws::{generate, GeneratorConfig};
    use kinematics::{Dataset, FeatureSet};
    use raven_sim::ArmCommand;

    fn trained() -> (Arc<TrainedPipeline>, Dataset) {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(61));
        let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(13);
        cfg.train.epochs = 2;
        cfg.train_stride = 6;
        let idx: Vec<usize> = (0..ds.len()).collect();
        (Arc::new(TrainedPipeline::train(&ds, &idx, &cfg)), ds)
    }

    fn plan_commands(p: f32) -> Commands {
        let arm = ArmCommand {
            position: kinematics::Vec3::new(10.0 * p, -5.0 * p, 20.0),
            grasper: 0.12,
            euler: (0.0, 0.0, 0.0),
        };
        Commands { arms: [arm, arm] }
    }

    /// Drives `reactor` over a demo's frames like the simulator would:
    /// apply tick t, then observe tick t. Returns the commands each tick
    /// actually carried.
    fn drive(reactor: &mut SafetyReactor, ds: &Dataset, n: usize) -> Vec<Commands> {
        let demo = &ds.demos[0];
        let mut out = Vec::new();
        for t in 0..n.min(demo.len()) {
            let p = t as f32 / (n - 1) as f32;
            let mut cmds = plan_commands(p);
            reactor.apply(t, p, &mut cmds);
            reactor.observe(t, &demo.frames[t]);
            out.push(cmds);
        }
        out
    }

    fn trigger_happy(policy: MitigationPolicy) -> ReactorConfig {
        // A threshold this low alerts on every warm frame, making the
        // engage timeline deterministic regardless of what the tiny test
        // model learned.
        ReactorConfig {
            threshold: 1e-6,
            debounce: 2,
            actuation_latency: 3,
            policy,
            ..Default::default()
        }
    }

    #[test]
    fn log_only_never_touches_commands() {
        let (pipeline, ds) = trained();
        let mut reactor = SafetyReactor::new(pipeline, trigger_happy(MitigationPolicy::LogOnly));
        let n = 60;
        let carried = drive(&mut reactor, &ds, n);
        for (t, cmds) in carried.iter().enumerate() {
            assert_eq!(*cmds, plan_commands(t as f32 / (n - 1) as f32), "tick {t} mutated");
        }
        assert!(reactor.alerts() > 0, "trigger-happy threshold should alert");
        assert_eq!(reactor.engaged_tick(), None);
        assert_eq!(reactor.ticks_gated(), 0);
    }

    #[test]
    fn stop_and_hold_freezes_commands_after_latency() {
        let (pipeline, ds) = trained();
        let cfg = trigger_happy(MitigationPolicy::StopAndHold);
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let n = 80;
        let carried = drive(&mut reactor, &ds, n);

        let warm = pipeline.config.window.width.max(pipeline.config.gesture_window);
        // First score (and alert) at tick warm-1; debounce confirms one
        // frame later; gate engages after 1 tick of sensing delay plus the
        // modeled actuation latency.
        let confirm = warm - 1 + (cfg.debounce - 1);
        let expect_gate = confirm + 1 + cfg.actuation_latency;
        assert_eq!(reactor.first_alert_tick(), Some(warm - 1));
        assert_eq!(reactor.engaged_tick(), Some(expect_gate));

        // Before the gate: plan passes through. From the gate on: frozen at
        // the last un-gated setpoint.
        let held = carried[expect_gate - 1];
        for (t, cmds) in carried.iter().enumerate() {
            if t < expect_gate {
                assert_eq!(*cmds, plan_commands(t as f32 / (n - 1) as f32), "tick {t}");
            } else {
                assert_eq!(*cmds, held, "tick {t} should hold the pre-gate setpoint");
            }
        }
        assert_eq!(reactor.ticks_gated(), n - expect_gate);
    }

    #[test]
    fn pause_hands_control_back_after_n_ticks() {
        let (pipeline, ds) = trained();
        let pause = 5usize;
        let cfg = trigger_happy(MitigationPolicy::PauseTicks(pause));
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let n = 80;
        let carried = drive(&mut reactor, &ds, n);

        let gate = reactor.engaged_tick().expect("pause engages");
        // Gated for exactly `pause` ticks...
        let held = carried[gate - 1];
        for (t, cmds) in carried.iter().enumerate().skip(gate).take(pause) {
            assert_eq!(*cmds, held, "tick {t} inside the pause");
        }
        // ...then the plan flows again (until the still-alerting stream
        // re-engages after another debounce run-up).
        let resume = gate + pause;
        assert_eq!(carried[resume], plan_commands(resume as f32 / (n - 1) as f32));
        assert!(reactor.ticks_gated() > pause, "trigger-happy stream re-engages the pause");
    }

    #[test]
    fn reset_restores_a_cold_reactor() {
        let (pipeline, ds) = trained();
        let cfg = trigger_happy(MitigationPolicy::StopAndHold);
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let first = drive(&mut reactor, &ds, 70);
        assert!(reactor.engaged_tick().is_some());

        reactor.reset();
        assert_eq!(reactor.ticks_seen(), 0);
        assert_eq!(reactor.alerts(), 0);
        assert_eq!(reactor.first_alert_tick(), None);
        assert_eq!(reactor.engaged_tick(), None);
        assert_eq!(reactor.ticks_gated(), 0);

        // A reset reactor replays the exact same trajectory as a fresh one.
        let second = drive(&mut reactor, &ds, 70);
        assert_eq!(first, second, "post-reset run must be bit-equal to the first");
    }

    #[test]
    #[should_panic(expected = "Perfect")]
    fn perfect_mode_is_rejected_at_construction() {
        let (pipeline, _) = trained();
        let cfg = ReactorConfig { mode: ContextMode::Perfect, ..ReactorConfig::default() };
        let _ = SafetyReactor::new(pipeline, cfg);
    }

    /// Satellite regression: bad configurations are typed errors through
    /// `try_new`, so a campaign sweeping ReactorConfigs fails one sweep
    /// point instead of panicking the process — including a debounce no
    /// trial could ever confirm within the pipeline's warm-up.
    #[test]
    fn try_new_returns_typed_config_errors() {
        use crate::policy::ConfigError;
        let (pipeline, _) = trained();
        let warmup = pipeline.config.window.width.max(pipeline.config.gesture_window);

        let bad_threshold = ReactorConfig { threshold: 1.5, ..ReactorConfig::default() };
        assert_eq!(
            SafetyReactor::try_new(Arc::clone(&pipeline), bad_threshold).err(),
            Some(ConfigError::Threshold(1.5))
        );

        let zero_debounce = ReactorConfig { debounce: 0, ..ReactorConfig::default() };
        assert_eq!(
            SafetyReactor::try_new(Arc::clone(&pipeline), zero_debounce).err(),
            Some(ConfigError::ZeroDebounce)
        );

        let perfect = ReactorConfig { mode: ContextMode::Perfect, ..ReactorConfig::default() };
        assert_eq!(
            SafetyReactor::try_new(Arc::clone(&pipeline), perfect).err(),
            Some(ConfigError::PerfectContext)
        );

        let beyond = ReactorConfig { debounce: warmup + 1, ..ReactorConfig::default() };
        assert_eq!(
            SafetyReactor::try_new(Arc::clone(&pipeline), beyond).err(),
            Some(ConfigError::DebounceBeyondWarmup { debounce: warmup + 1, warmup })
        );

        let at_warmup = ReactorConfig { debounce: warmup, ..ReactorConfig::default() };
        assert!(
            SafetyReactor::try_new(Arc::clone(&pipeline), at_warmup).is_ok(),
            "debounce == warm-up is the largest confirmable streak and must pass"
        );
    }

    /// Satellite regression (`PauseTicks` hand-back audit): the alert
    /// streak accrued *during* a pause must reset at hand-back, so the
    /// first post-pause frame can never instantly re-trigger mitigation —
    /// re-engaging requires a fresh debounce run-up.
    #[test]
    fn pause_handback_resets_the_streak_before_reengaging() {
        let (pipeline, ds) = trained();
        let pause = 6usize;
        let cfg = ReactorConfig {
            threshold: 1e-6, // alerts on every warm frame: worst case for a stale streak
            debounce: 3,
            actuation_latency: 2,
            policy: MitigationPolicy::PauseTicks(pause),
            ..Default::default()
        };
        let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
        let n = 80;
        let carried = drive(&mut reactor, &ds, n);

        let gate = reactor.engaged_tick().expect("pause engages");
        let resume = gate + pause;
        // The streak kept alerting all through the pause; a stale streak
        // would re-gate at `resume` immediately. Instead the hand-back
        // must let the plan through for a full debounce run-up plus the
        // sensing + actuation delay before the re-engaged gate can land.
        let regate = resume + (cfg.debounce - 1) + 1 + cfg.actuation_latency;
        for (t, cmds) in carried.iter().enumerate().take(regate.min(n)).skip(resume) {
            assert_eq!(
                *cmds,
                plan_commands(t as f32 / (n - 1) as f32),
                "tick {t}: hand-back must not be re-gated before a fresh debounce confirms"
            );
        }
        assert!(regate < n, "trial long enough to observe the re-engage");
        assert_eq!(carried[regate], carried[regate - 1], "re-engaged gate holds again");
    }

    /// The two deployment shapes — in-process engine vs. pool-fed gate —
    /// must produce identical gating timelines over the same frames, in
    /// `Predicted` *and* `NoContext` mode. `NoContext` is the regression
    /// case: its error stage warms before its gesture stage, and an
    /// earlier revision alerted on the raw score there, diverging from the
    /// pooled shape for exactly those warm-up ticks.
    #[test]
    fn pooled_reactor_matches_in_process_reactor_bit_for_bit() {
        use crate::PooledReactor;
        use context_monitor::serve::{Decision, ServeConfig, ShardedMonitorPool};

        let (pipeline, ds) = trained();
        let demo = &ds.demos[0];
        let n = 70usize;
        for mode in [ContextMode::Predicted, ContextMode::NoContext] {
            let cfg = ReactorConfig { mode, ..trigger_happy(MitigationPolicy::StopAndHold) };
            let mut reactor = SafetyReactor::new(Arc::clone(&pipeline), cfg);
            let in_process = drive(&mut reactor, &ds, n);

            let mut pool = ShardedMonitorPool::with_sessions(
                Arc::clone(&pipeline),
                mode,
                ServeConfig { workers: 1, threshold: 0.5, precision: cfg.precision },
                1,
            );
            let mut gate = PooledReactor::new(cfg, 0).expect("valid config");
            let mut pooled = Vec::new();
            let mut decisions: Vec<Decision> = Vec::new();
            for t in 0..n {
                let p = t as f32 / (n - 1) as f32;
                let mut cmds = plan_commands(p);
                gate.apply(t, p, &mut cmds);
                pool.submit(0, &demo.frames[t]).expect("non-Perfect mode");
                decisions.clear();
                pool.flush_into(&mut decisions);
                for d in &decisions {
                    gate.on_decision(d);
                }
                pooled.push(cmds);
            }

            assert_eq!(in_process, pooled, "{mode}: command timelines diverged");
            assert_eq!(gate.deadline_misses(), 0, "barrier drain never misses");
            let g = gate.gate();
            assert_eq!(g.first_alert_tick(), reactor.first_alert_tick(), "{mode}");
            assert_eq!(g.engaged_tick(), reactor.engaged_tick(), "{mode}");
            assert_eq!(g.ticks_gated(), reactor.ticks_gated(), "{mode}");
            assert_eq!(g.alerts(), reactor.alerts(), "{mode}");
            assert!(reactor.engaged_tick().is_some(), "{mode}: trigger-happy stream engages");
        }
    }

    #[test]
    fn guarded_runs_fault_before_reactor() {
        struct Offset;
        impl CommandFilter for Offset {
            fn apply(&mut self, _t: usize, _p: f32, c: &mut Commands) {
                c.arms[1].grasper += 1.0;
            }
        }
        let (pipeline, ds) = trained();
        let mut guarded = Guarded::new(
            Offset,
            SafetyReactor::new(pipeline, trigger_happy(MitigationPolicy::StopAndHold)),
        );
        let demo = &ds.demos[0];
        let mut frozen: Option<Commands> = None;
        for t in 0..70 {
            let mut cmds = plan_commands(t as f32 / 69.0);
            guarded.apply(t, t as f32 / 69.0, &mut cmds);
            guarded.observe(t, &demo.frames[t]);
            match guarded.reactor.engaged_tick() {
                Some(gate) if t >= gate => {
                    // Held commands are the *faulted* stream: the reactor is
                    // downstream of the injector, like the real system.
                    let f = *frozen.get_or_insert(cmds);
                    assert_eq!(cmds, f, "tick {t}");
                    assert!((f.arms[1].grasper - 1.12).abs() < 1e-6);
                }
                _ => assert!((cmds.arms[1].grasper - 1.12).abs() < 1e-6, "fault applies"),
            }
        }
        assert!(frozen.is_some(), "reactor should have engaged");
    }
}
