//! Mitigation policies and reactor configuration.

use context_monitor::{ContextMode, Precision, TrainedPipeline};
use serde::{Deserialize, Serialize};

/// Typed rejection of an invalid [`ReactorConfig`].
///
/// Construction used to `assert!` these invariants, which meant one bad
/// sweep point in a fleet campaign took down the whole process (a panic
/// inside a scoped worker aborts every in-flight trial). A typed error lets
/// the campaign fail that one configuration and keep sweeping.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// The alert threshold is outside the open interval `(0, 1)`.
    Threshold(f32),
    /// `debounce == 0`: no alert streak can ever confirm.
    ZeroDebounce,
    /// `debounce` exceeds the engine warm-up (`window.width` vs
    /// `gesture_window`, whichever is larger): the configuration spends
    /// longer confirming its first alert than the entire window of context
    /// the decision is made from — on a sweep grid this is a silent
    /// "mitigation can never engage in time" point, so it is rejected
    /// loudly instead.
    DebounceBeyondWarmup {
        /// The configured debounce.
        debounce: usize,
        /// The pipeline's warm-up in frames.
        warmup: usize,
    },
    /// [`ContextMode::Perfect`] has no in-loop gesture oracle.
    PerfectContext,
    /// [`Precision::Int8`] was requested on a pipeline whose quantized twin
    /// was never built (`TrainedPipeline::quantize`). Rejected here so a
    /// sweep point asking for the int8 tier fails as a configuration
    /// error instead of panicking inside pool construction.
    QuantizedTierMissing,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Threshold(t) => {
                write!(f, "threshold must be in (0,1), got {t}")
            }
            ConfigError::ZeroDebounce => f.write_str("debounce must be at least 1 frame"),
            ConfigError::DebounceBeyondWarmup { debounce, warmup } => write!(
                f,
                "debounce {debounce} exceeds the {warmup}-frame window warm-up: the first \
                 alert could never confirm within the context window it was decided from"
            ),
            ConfigError::PerfectContext => f.write_str(
                "reactor cannot run in ContextMode::Perfect: the control loop has no \
                 external gesture oracle (use Predicted or NoContext)",
            ),
            ConfigError::QuantizedTierMissing => f.write_str(
                "Precision::Int8 requires TrainedPipeline::quantize() before reactor \
                 construction (the pipeline has no quantized twin)",
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// What the reactor does to the command stream once an alert has been
/// confirmed (after [`ReactorConfig::debounce`] consecutive alert frames)
/// and the modeled actuation latency has elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationPolicy {
    /// Record alerts but never touch the commands (open-loop telemetry —
    /// the deployment shape every earlier PR stopped at).
    LogOnly,
    /// Freeze the command stream at the last un-gated setpoint for the rest
    /// of the trial: the robot holds position and grasper angle — the
    /// paper's "enough time margin to stop the robot".
    StopAndHold,
    /// Freeze the command stream for `n` ticks, then hand control back to
    /// the (possibly still faulty) plan. A later alert re-engages the
    /// pause, so a fault outliving the pause is re-mitigated.
    PauseTicks(usize),
}

impl std::fmt::Display for MitigationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitigationPolicy::LogOnly => f.write_str("log-only"),
            MitigationPolicy::StopAndHold => f.write_str("stop-and-hold"),
            MitigationPolicy::PauseTicks(n) => write!(f, "pause({n})"),
        }
    }
}

/// Configuration of a [`SafetyReactor`](crate::SafetyReactor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactorConfig {
    /// Context mode of the in-loop engine. Must not be
    /// [`ContextMode::Perfect`]: a reactor in the control loop has no
    /// oracle gesture boundaries — stage 1 infers them, exactly like the
    /// streaming monitor.
    pub mode: ContextMode,
    /// Alert threshold on the unsafe probability, in `(0, 1)`.
    pub threshold: f32,
    /// Consecutive alert frames required before mitigation engages (≥ 1).
    /// Debouncing trades a few ticks of reaction time for robustness
    /// against single-frame score spikes (false stops).
    pub debounce: usize,
    /// Modeled actuation latency: ticks between the engage decision and
    /// commands actually gating. `0` still implies one tick of sensing
    /// delay (see the crate docs) — the loop can never act on the tick it
    /// observed.
    pub actuation_latency: usize,
    /// The mitigation applied once engaged.
    pub policy: MitigationPolicy,
    /// Numeric tier the in-loop engine infers at. [`Precision::Int8`]
    /// requires the pipeline's quantized twin
    /// (`TrainedPipeline::quantize`). Defaults to [`Precision::F32`] —
    /// also when deserializing configs written before the quantized tier
    /// existed.
    #[serde(default)]
    pub precision: Precision,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            mode: ContextMode::Predicted,
            threshold: 0.5,
            debounce: 2,
            actuation_latency: 2,
            policy: MitigationPolicy::StopAndHold,
            precision: Precision::F32,
        }
    }
}

impl ReactorConfig {
    /// Validates everything checkable without a pipeline: threshold in
    /// `(0, 1)`, `debounce >= 1`, a non-[`ContextMode::Perfect`] mode.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a typed [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !(self.threshold > 0.0 && self.threshold < 1.0) {
            return Err(ConfigError::Threshold(self.threshold));
        }
        if self.debounce == 0 {
            return Err(ConfigError::ZeroDebounce);
        }
        if self.mode == ContextMode::Perfect {
            return Err(ConfigError::PerfectContext);
        }
        Ok(())
    }

    /// Full validation against the pipeline the reactor will run:
    /// [`ReactorConfig::validate`] plus the warm-up bound on `debounce`.
    ///
    /// # Errors
    ///
    /// The first violated invariant, as a typed [`ConfigError`].
    pub fn validate_for(&self, pipeline: &TrainedPipeline) -> Result<(), ConfigError> {
        self.validate()?;
        let warmup = pipeline.config.window.width.max(pipeline.config.gesture_window);
        if self.debounce > warmup {
            return Err(ConfigError::DebounceBeyondWarmup { debounce: self.debounce, warmup });
        }
        if self.precision == Precision::Int8 && pipeline.quantized.is_none() {
            return Err(ConfigError::QuantizedTierMissing);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_closed_loop() {
        let cfg = ReactorConfig::default();
        assert_eq!(cfg.policy, MitigationPolicy::StopAndHold);
        assert_eq!(cfg.mode, ContextMode::Predicted);
        assert!(cfg.debounce >= 1);
    }

    #[test]
    fn policies_render_for_reports() {
        assert_eq!(MitigationPolicy::LogOnly.to_string(), "log-only");
        assert_eq!(MitigationPolicy::StopAndHold.to_string(), "stop-and-hold");
        assert_eq!(MitigationPolicy::PauseTicks(25).to_string(), "pause(25)");
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg =
            ReactorConfig { policy: MitigationPolicy::PauseTicks(40), ..ReactorConfig::default() };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ReactorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
