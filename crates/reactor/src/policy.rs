//! Mitigation policies and reactor configuration.

use context_monitor::ContextMode;
use serde::{Deserialize, Serialize};

/// What the reactor does to the command stream once an alert has been
/// confirmed (after [`ReactorConfig::debounce`] consecutive alert frames)
/// and the modeled actuation latency has elapsed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MitigationPolicy {
    /// Record alerts but never touch the commands (open-loop telemetry —
    /// the deployment shape every earlier PR stopped at).
    LogOnly,
    /// Freeze the command stream at the last un-gated setpoint for the rest
    /// of the trial: the robot holds position and grasper angle — the
    /// paper's "enough time margin to stop the robot".
    StopAndHold,
    /// Freeze the command stream for `n` ticks, then hand control back to
    /// the (possibly still faulty) plan. A later alert re-engages the
    /// pause, so a fault outliving the pause is re-mitigated.
    PauseTicks(usize),
}

impl std::fmt::Display for MitigationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MitigationPolicy::LogOnly => f.write_str("log-only"),
            MitigationPolicy::StopAndHold => f.write_str("stop-and-hold"),
            MitigationPolicy::PauseTicks(n) => write!(f, "pause({n})"),
        }
    }
}

/// Configuration of a [`SafetyReactor`](crate::SafetyReactor).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactorConfig {
    /// Context mode of the in-loop engine. Must not be
    /// [`ContextMode::Perfect`]: a reactor in the control loop has no
    /// oracle gesture boundaries — stage 1 infers them, exactly like the
    /// streaming monitor.
    pub mode: ContextMode,
    /// Alert threshold on the unsafe probability, in `(0, 1)`.
    pub threshold: f32,
    /// Consecutive alert frames required before mitigation engages (≥ 1).
    /// Debouncing trades a few ticks of reaction time for robustness
    /// against single-frame score spikes (false stops).
    pub debounce: usize,
    /// Modeled actuation latency: ticks between the engage decision and
    /// commands actually gating. `0` still implies one tick of sensing
    /// delay (see the crate docs) — the loop can never act on the tick it
    /// observed.
    pub actuation_latency: usize,
    /// The mitigation applied once engaged.
    pub policy: MitigationPolicy,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            mode: ContextMode::Predicted,
            threshold: 0.5,
            debounce: 2,
            actuation_latency: 2,
            policy: MitigationPolicy::StopAndHold,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_closed_loop() {
        let cfg = ReactorConfig::default();
        assert_eq!(cfg.policy, MitigationPolicy::StopAndHold);
        assert_eq!(cfg.mode, ContextMode::Predicted);
        assert!(cfg.debounce >= 1);
    }

    #[test]
    fn policies_render_for_reports() {
        assert_eq!(MitigationPolicy::LogOnly.to_string(), "log-only");
        assert_eq!(MitigationPolicy::StopAndHold.to_string(), "stop-and-hold");
        assert_eq!(MitigationPolicy::PauseTicks(25).to_string(), "pause(25)");
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg =
            ReactorConfig { policy: MitigationPolicy::PauseTicks(40), ..ReactorConfig::default() };
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ReactorConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(cfg, back);
    }
}
