//! Per-gesture motion primitives.
//!
//! Each gesture is synthesized as a parametric arm motion with a
//! characteristic *zone* (where in the workspace it happens), *direction*,
//! *grasper profile*, and *rotation activity* — the spatio-temporal
//! signatures the paper's classifiers learn from kinematics alone.
//! Workspace coordinates are millimeters, matching the Raven II fault
//! injection units.

use gestures::Gesture;
use kinematics::Vec3;
use serde::{Deserialize, Serialize};

/// Which manipulator(s) a gesture drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArmSel {
    /// Left manipulator (index 0).
    Left,
    /// Right manipulator (index 1).
    Right,
    /// Both manipulators.
    Both,
}

impl ArmSel {
    /// Whether the manipulator with `index` is active.
    pub fn includes(self, index: usize) -> bool {
        match self {
            ArmSel::Left => index == 0,
            ArmSel::Right => index == 1,
            ArmSel::Both => true,
        }
    }
}

/// Grasper behaviour over a gesture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum GrasperProfile {
    /// Stay at the current angle.
    Hold,
    /// Ramp to the target angle (radians) over the gesture.
    RampTo(f32),
    /// Open to `open` then close to `closed` in the last quarter (a grab).
    OpenThenClose {
        /// Peak opening angle.
        open: f32,
        /// Final closed angle.
        closed: f32,
    },
}

/// Parametric description of one gesture's motion.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Primitive {
    /// Active arm(s).
    pub arm: ArmSel,
    /// Workspace zone the active arm moves toward (`None` = stay in place).
    pub zone: Option<Vec3>,
    /// Perpendicular arc amplitude (mm) — curved approaches (e.g. G3 pushes
    /// the needle along its curve).
    pub arc: f32,
    /// Euler-angle rates (rad over the whole gesture) — rotation-dominant
    /// gestures like G8 have large values here.
    pub rotation_delta: (f32, f32, f32),
    /// Grasper behaviour for the active arm(s).
    pub grasper: GrasperProfile,
    /// Duration range in frames at 30 Hz, inclusive.
    pub duration: (usize, usize),
    /// Tremor/oscillation amplitude (mm).
    pub oscillation: f32,
}

/// Workspace landmarks (mm). The Block Transfer block/receptacle layout
/// mirrors the Gazebo world of §IV-B.
pub mod zones {
    use kinematics::Vec3;

    /// Where needles/objects are picked up.
    pub const NEEDLE: Vec3 = Vec3 { x: 60.0, y: -40.0, z: 10.0 };
    /// Center of the workspace.
    pub const CENTER: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    /// Task end points / drop-off area.
    pub const ENDPOINT: Vec3 = Vec3 { x: -60.0, y: 40.0, z: 10.0 };
    /// Simulated tissue location (Suturing G3).
    pub const TISSUE: Vec3 = Vec3 { x: 20.0, y: 20.0, z: -10.0 };
    /// Block Transfer: block pick-up position.
    pub const BLOCK: Vec3 = Vec3 { x: 50.0, y: -30.0, z: 0.0 };
    /// Block Transfer: receptacle position.
    pub const RECEPTACLE: Vec3 = Vec3 { x: -50.0, y: 30.0, z: 0.0 };
}

/// Fully-open and fully-closed grasper angles (radians). The Raven II fault
/// campaign sweeps 0.3–1.6 rad over this range (Table III).
pub const GRASPER_OPEN: f32 = 1.2;
/// Closed grasper angle.
pub const GRASPER_CLOSED: f32 = 0.1;

/// The motion primitive for `gesture`.
///
/// Every gesture in the four tasks' vocabularies has a primitive; gestures
/// never used by any task (e.g. G7 in our tasks) fall back to a small idle
/// motion.
pub fn primitive(gesture: Gesture) -> Primitive {
    use zones::*;
    use ArmSel::*;
    use GrasperProfile::*;
    match gesture {
        // Reaching gestures: fast travel toward the needle zone, grab at the
        // end.
        Gesture::G1 => Primitive {
            arm: Right,
            zone: Some(NEEDLE),
            arc: 4.0,
            rotation_delta: (0.1, 0.0, 0.1),
            grasper: OpenThenClose { open: GRASPER_OPEN, closed: GRASPER_CLOSED },
            duration: (25, 60),
            oscillation: 0.6,
        },
        Gesture::G12 => Primitive {
            arm: Left,
            zone: Some(NEEDLE),
            arc: 4.0,
            rotation_delta: (0.1, 0.0, -0.1),
            grasper: OpenThenClose { open: GRASPER_OPEN, closed: GRASPER_CLOSED },
            duration: (25, 60),
            oscillation: 0.6,
        },
        // Positioning: slow, small, precise movements with rotation trim.
        Gesture::G2 => Primitive {
            arm: Right,
            zone: Some(TISSUE),
            arc: 2.0,
            rotation_delta: (0.3, 0.2, 0.0),
            grasper: Hold,
            duration: (30, 80),
            oscillation: 0.9,
        },
        // Pushing needle through tissue: curved, rotation about the needle
        // axis.
        Gesture::G3 => Primitive {
            arm: Right,
            zone: Some(TISSUE),
            arc: 14.0,
            rotation_delta: (1.2, 0.1, 0.0),
            grasper: Hold,
            duration: (45, 110),
            oscillation: 0.5,
        },
        // Transfer left<->right: both arms converge at the center; grasper
        // handoff.
        Gesture::G4 => Primitive {
            arm: Both,
            zone: Some(CENTER),
            arc: 3.0,
            rotation_delta: (0.0, 0.3, 0.2),
            grasper: OpenThenClose { open: GRASPER_OPEN * 0.8, closed: GRASPER_CLOSED },
            duration: (30, 70),
            oscillation: 0.7,
        },
        // Carrying to center / receptacle with object in grip.
        Gesture::G5 => Primitive {
            arm: Right,
            zone: Some(RECEPTACLE),
            arc: 6.0,
            rotation_delta: (0.0, 0.0, 0.1),
            grasper: Hold,
            duration: (35, 90),
            oscillation: 0.5,
        },
        // Pulling suture with left hand: long straight pull away.
        Gesture::G6 => Primitive {
            arm: Left,
            zone: Some(CENTER),
            arc: 2.0,
            rotation_delta: (0.0, 0.1, 0.0),
            grasper: Hold,
            duration: (40, 100),
            oscillation: 0.4,
        },
        Gesture::G7 => Primitive {
            arm: Right,
            zone: None,
            arc: 1.0,
            rotation_delta: (0.0, 0.0, 0.0),
            grasper: Hold,
            duration: (20, 40),
            oscillation: 0.3,
        },
        // Orienting needle: rotation-dominant, little translation.
        Gesture::G8 => Primitive {
            arm: Right,
            zone: None,
            arc: 1.5,
            rotation_delta: (0.9, 0.9, 0.6),
            grasper: Hold,
            duration: (25, 70),
            oscillation: 0.8,
        },
        // Tightening suture: short brisk pulls with the right hand.
        Gesture::G9 => Primitive {
            arm: Right,
            zone: Some(CENTER),
            arc: 1.0,
            rotation_delta: (0.0, 0.0, 0.0),
            grasper: Hold,
            duration: (20, 50),
            oscillation: 2.2,
        },
        // Loosening suture: slow reverse motion.
        Gesture::G10 => Primitive {
            arm: Right,
            zone: Some(TISSUE),
            arc: 1.0,
            rotation_delta: (0.0, 0.0, -0.1),
            grasper: Hold,
            duration: (20, 45),
            oscillation: 0.4,
        },
        // Drop and move to endpoints: travel + grasper opens.
        Gesture::G11 => Primitive {
            arm: Both,
            zone: Some(ENDPOINT),
            arc: 3.0,
            rotation_delta: (0.0, 0.0, 0.0),
            grasper: RampTo(GRASPER_OPEN),
            duration: (30, 70),
            oscillation: 0.5,
        },
        // Knot-tying loop gestures: circular motion signatures.
        Gesture::G13 => Primitive {
            arm: Left,
            zone: Some(CENTER),
            arc: 18.0,
            rotation_delta: (0.4, 0.8, 0.4),
            grasper: Hold,
            duration: (40, 90),
            oscillation: 0.6,
        },
        Gesture::G14 => Primitive {
            arm: Right,
            zone: Some(NEEDLE),
            arc: 5.0,
            rotation_delta: (0.1, 0.0, 0.0),
            grasper: OpenThenClose { open: GRASPER_OPEN, closed: GRASPER_CLOSED },
            duration: (25, 55),
            oscillation: 0.6,
        },
        Gesture::G15 => Primitive {
            arm: Both,
            zone: Some(ENDPOINT),
            arc: 2.0,
            rotation_delta: (0.0, 0.0, 0.0),
            grasper: Hold,
            duration: (30, 70),
            oscillation: 1.4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gestures::ALL_GESTURES;

    #[test]
    fn every_gesture_has_a_primitive() {
        for g in ALL_GESTURES {
            let p = primitive(g);
            assert!(p.duration.0 > 0 && p.duration.0 <= p.duration.1, "{g}: bad duration");
        }
    }

    #[test]
    fn reaching_gestures_mirror_arms() {
        assert_eq!(primitive(Gesture::G1).arm, ArmSel::Right);
        assert_eq!(primitive(Gesture::G12).arm, ArmSel::Left);
    }

    #[test]
    fn orientation_gesture_is_rotation_dominant() {
        let p8 = primitive(Gesture::G8);
        let mag = p8.rotation_delta.0.abs() + p8.rotation_delta.1.abs() + p8.rotation_delta.2.abs();
        for g in [Gesture::G1, Gesture::G5, Gesture::G6, Gesture::G11] {
            let p = primitive(g);
            let m = p.rotation_delta.0.abs() + p.rotation_delta.1.abs() + p.rotation_delta.2.abs();
            assert!(mag > m, "G8 rotation {mag} should dominate {g} ({m})");
        }
    }

    #[test]
    fn drop_gesture_opens_grasper() {
        match primitive(Gesture::G11).grasper {
            GrasperProfile::RampTo(target) => assert!(target > 1.0),
            other => panic!("G11 grasper should ramp open, got {other:?}"),
        }
    }

    #[test]
    fn arm_selection_includes() {
        assert!(ArmSel::Left.includes(0));
        assert!(!ArmSel::Left.includes(1));
        assert!(ArmSel::Right.includes(1));
        assert!(ArmSel::Both.includes(0) && ArmSel::Both.includes(1));
    }
}
