//! # `jigsaws` — synthetic JIGSAWS-like demonstration generator
//!
//! The paper evaluates on the JIGSAWS dataset (39 Suturing demonstrations,
//! kinematics at 30 Hz, gesture transcripts, manual error annotation). The
//! dataset is not redistributable, so this crate generates statistically
//! analogous demonstrations (see DESIGN.md §2):
//!
//! * gesture sequences sampled from the task's reference Markov chain
//!   (Fig. 3),
//! * continuous two-arm motion from per-gesture motion primitives
//!   ([`primitives`]),
//! * rubric-driven kinematic error injection at Table VII rates
//!   ([`errors`]),
//! * exact JIGSAWS schema output (19 variables/manipulator, 30 Hz,
//!   per-frame gesture + safety labels).
//!
//! ```
//! use jigsaws::{generate, GeneratorConfig};
//! use gestures::Task;
//!
//! let dataset = generate(&GeneratorConfig::fast(Task::Suturing));
//! assert_eq!(dataset.len(), 8);
//! dataset.validate().expect("consistent demonstrations");
//! ```

#![warn(missing_docs)]

pub mod errors;
pub mod generator;
pub mod noise;
pub mod pose;
pub mod primitives;

pub use errors::{default_error_rates, sample_signature, ErrorSignature};
pub use generator::{generate, generate_demo, GeneratorConfig};
pub use primitives::{primitive, ArmSel, GrasperProfile, Primitive};
