//! The synthetic demonstration generator.
//!
//! Demonstrations are produced by (1) sampling a gesture sequence from the
//! task's reference Markov chain (Fig. 3), (2) synthesizing continuous arm
//! motion for each gesture from its motion primitive, (3) deciding per
//! gesture instance whether it is erroneous (per-gesture rates matching
//! Table VII) and, if so, injecting the rubric's kinematic error signature,
//! and (4) converting poses to the 19-variable JIGSAWS schema with
//! finite-difference velocities.

use crate::errors::{apply_signature, default_error_rates, rate_for, sample_signature};
use crate::noise::{randn, randn_scaled};
use crate::pose::{poses_to_samples, ArmPose, FramePose};
use crate::primitives::{primitive, GrasperProfile, Primitive};
use gestures::{Gesture, Task};
use kinematics::{Dataset, Demonstration, ErrorAnnotation, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// JIGSAWS subject identifiers.
const SUBJECTS: [&str; 8] = ["B", "C", "D", "E", "F", "G", "H", "I"];

/// Generator configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Task to generate.
    pub task: Task,
    /// Number of demonstrations.
    pub num_demos: usize,
    /// Master seed; every demonstration derives its own stream from it.
    pub seed: u64,
    /// Sampling rate (JIGSAWS records at 30 Hz).
    pub hz: f32,
    /// Number of super-trials to spread demonstrations over (LOSO unit).
    pub supertrials: usize,
    /// Global noise scale (1.0 = nominal surgeon tremor).
    pub noise: f32,
    /// Scales gesture durations (use < 1 for fast tests).
    pub duration_scale: f32,
    /// Maximum gestures per demonstration (safety cap on chain sampling).
    pub max_gestures: usize,
    /// Per-gesture error rates; `None` uses [`default_error_rates`].
    pub error_rates: Option<Vec<(Gesture, f32)>>,
}

impl GeneratorConfig {
    /// Nominal configuration for a task (paper-like rates and durations).
    pub fn new(task: Task) -> Self {
        Self {
            task,
            num_demos: match task {
                Task::Suturing => 39,      // §IV-A
                Task::KnotTying => 28,     // Table IV
                Task::NeedlePassing => 36, // Table IV
                Task::BlockTransfer => 20, // fault-free sims, §IV-B
            },
            seed: 0x5EED,
            hz: 30.0,
            supertrials: 5,
            noise: 1.0,
            duration_scale: 1.0,
            max_gestures: 25,
            error_rates: None,
        }
    }

    /// A small/fast configuration for unit tests and examples.
    pub fn fast(task: Task) -> Self {
        Self { num_demos: 8, duration_scale: 0.35, max_gestures: 10, ..Self::new(task) }
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of demonstrations (builder-style).
    pub fn with_demos(mut self, n: usize) -> Self {
        self.num_demos = n;
        self
    }

    /// Disables error injection entirely (fault-free demonstrations).
    pub fn fault_free(mut self) -> Self {
        self.error_rates = Some(Vec::new());
        self
    }
}

/// Generates a dataset of synthetic demonstrations.
///
/// # Panics
///
/// Panics if `num_demos == 0` or `supertrials == 0`.
pub fn generate(cfg: &GeneratorConfig) -> Dataset {
    assert!(cfg.num_demos > 0, "num_demos must be positive");
    assert!(cfg.supertrials > 0, "supertrials must be positive");
    let demos = (0..cfg.num_demos).map(|i| generate_demo(cfg, i)).collect();
    Dataset::new(demos)
}

/// Generates the `index`-th demonstration of the configured task.
pub fn generate_demo(cfg: &GeneratorConfig, index: usize) -> Demonstration {
    let mut rng =
        SmallRng::seed_from_u64(cfg.seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let subject = SUBJECTS[index % SUBJECTS.len()];
    // Subjects differ in skill: experts are steadier and make fewer errors.
    let (noise_mult, error_mult) = match index % 3 {
        0 => (0.7, 0.7), // expert
        1 => (1.0, 1.0), // intermediate
        _ => (1.4, 1.3), // novice
    };
    let rates = cfg.error_rates.clone().unwrap_or_else(|| default_error_rates(cfg.task));

    let sequence = cfg.task.reference_chain().sample(&mut rng, cfg.max_gestures);

    let mut state = initial_pose(&mut rng);
    let mut poses: Vec<FramePose> = Vec::new();
    let mut gesture_labels: Vec<Gesture> = Vec::new();
    let mut errors: Vec<ErrorAnnotation> = Vec::new();

    for &g in &sequence {
        let prim = primitive(g);
        let dur = sample_duration(&prim, cfg, &mut rng);
        let mut frames = synth_gesture(&mut state, g, &prim, dur, cfg.noise * noise_mult, &mut rng);

        let rate = (rate_for(&rates, g) * error_mult).min(0.95);
        let erroneous = rate > 0.0 && rng.gen_bool(rate as f64);
        let span_start = poses.len();
        if erroneous {
            if let Some(sig) = sample_signature(g, &mut rng) {
                let offset = apply_signature(sig, &mut frames, prim.arm, &mut rng);
                errors.push(ErrorAnnotation {
                    gesture: g,
                    span_start,
                    span_end: span_start + frames.len(),
                    actual_frame: span_start + offset,
                });
                // Error signatures can leave the arm elsewhere; resync the
                // running state to the last synthesized frame.
                state = frames.last().expect("non-empty gesture").clone();
            }
        }
        gesture_labels.extend(std::iter::repeat_n(g, frames.len()));
        poses.extend(frames);
    }

    let mut unsafe_labels = vec![false; poses.len()];
    for e in &errors {
        for l in &mut unsafe_labels[e.span_start..e.span_end] {
            *l = true;
        }
    }

    Demonstration {
        id: format!("{:?}_{subject}{index:03}", cfg.task),
        task: cfg.task,
        subject: subject.to_string(),
        supertrial: index % cfg.supertrials + 1,
        hz: cfg.hz,
        frames: poses_to_samples(&poses, cfg.hz),
        gestures: gesture_labels,
        unsafe_labels,
        errors,
    }
}

fn initial_pose(rng: &mut SmallRng) -> FramePose {
    let jitter =
        |rng: &mut SmallRng| Vec3::new(randn(rng) * 4.0, randn(rng) * 4.0, randn(rng) * 2.0);
    FramePose {
        arms: vec![
            ArmPose { pos: Vec3::new(-40.0, 0.0, 20.0) + jitter(rng), ..ArmPose::default() },
            ArmPose { pos: Vec3::new(40.0, 0.0, 20.0) + jitter(rng), ..ArmPose::default() },
        ],
    }
}

fn sample_duration(prim: &Primitive, cfg: &GeneratorConfig, rng: &mut SmallRng) -> usize {
    let base = rng.gen_range(prim.duration.0..=prim.duration.1) as f32;
    let scaled = base * cfg.duration_scale * (cfg.hz / 30.0);
    (scaled.round() as usize).max(3)
}

fn smoothstep(s: f32) -> f32 {
    s * s * (3.0 - 2.0 * s)
}

/// Synthesizes one gesture's frames, advancing `state` to the final pose.
fn synth_gesture(
    state: &mut FramePose,
    _gesture: Gesture,
    prim: &Primitive,
    dur: usize,
    noise: f32,
    rng: &mut SmallRng,
) -> Vec<FramePose> {
    let arms = state.arms.len();
    let start: Vec<ArmPose> = state.arms.clone();

    // Per active arm: travel target and basis vectors for the arc.
    let mut targets: Vec<Vec3> = Vec::with_capacity(arms);
    let mut dirs: Vec<(Vec3, Vec3)> = Vec::with_capacity(arms);
    for (a, sp) in start.iter().enumerate() {
        let target = if prim.arm.includes(a) {
            match prim.zone {
                Some(z) => z + Vec3::new(randn(rng) * 8.0, randn(rng) * 8.0, randn(rng) * 4.0),
                None => sp.pos + Vec3::new(randn(rng) * 5.0, randn(rng) * 5.0, randn(rng) * 3.0),
            }
        } else {
            sp.pos
        };
        let dir = (target - sp.pos).normalized();
        let mut perp = dir.cross(Vec3::new(0.0, 0.0, 1.0));
        if perp.norm() < 1e-4 {
            perp = Vec3::new(1.0, 0.0, 0.0);
        }
        let perp = perp.normalized();
        targets.push(target);
        dirs.push((perp, dir.cross(perp).normalized()));
    }

    // Rotation targets are *absolute* per-gesture orientations (surgeons
    // re-orient the instrument for each gesture), so Euler angles stay
    // bounded and gesture-indicative instead of accumulating across the
    // demonstration.
    let rot_targets: Vec<(f32, f32, f32)> = start
        .iter()
        .enumerate()
        .map(|(a, sp)| {
            if prim.arm.includes(a) {
                (
                    randn_scaled(rng, prim.rotation_delta.0, 0.1),
                    randn_scaled(rng, prim.rotation_delta.1, 0.1),
                    randn_scaled(rng, prim.rotation_delta.2, 0.1),
                )
            } else {
                sp.euler
            }
        })
        .collect();

    let mut frames = Vec::with_capacity(dur);
    for t in 0..dur {
        let s = if dur <= 1 { 1.0 } else { t as f32 / (dur - 1) as f32 };
        let eased = smoothstep(s);
        let mut frame = FramePose { arms: Vec::with_capacity(arms) };
        for a in 0..arms {
            let sp = &start[a];
            if !prim.arm.includes(a) {
                // Inactive arm: light tremor around its pose.
                frame.arms.push(ArmPose {
                    pos: sp.pos + Vec3::new(randn(rng), randn(rng), randn(rng)) * (0.15 * noise),
                    euler: sp.euler,
                    grasper: sp.grasper,
                });
                continue;
            }
            let (perp, perp2) = dirs[a];
            let arc = perp * (prim.arc * (std::f32::consts::PI * s).sin());
            let osc = perp2 * (prim.oscillation * (2.0 * std::f32::consts::PI * 3.0 * s).sin());
            let tremor = Vec3::new(randn(rng), randn(rng), randn(rng)) * (0.3 * noise);
            let pos = sp.pos.lerp(targets[a], eased) + arc + osc + tremor;

            let rt = rot_targets[a];
            let euler = (
                sp.euler.0 + (rt.0 - sp.euler.0) * eased + randn(rng) * 0.01 * noise,
                sp.euler.1 + (rt.1 - sp.euler.1) * eased + randn(rng) * 0.01 * noise,
                sp.euler.2 + (rt.2 - sp.euler.2) * eased + randn(rng) * 0.01 * noise,
            );

            let grasper = match prim.grasper {
                GrasperProfile::Hold => (sp.grasper + randn(rng) * 0.005 * noise).clamp(0.0, 1.6),
                GrasperProfile::RampTo(target) => sp.grasper + (target - sp.grasper) * eased,
                GrasperProfile::OpenThenClose { open, closed } => {
                    if s < 0.6 {
                        sp.grasper + (open - sp.grasper) * smoothstep(s / 0.6)
                    } else {
                        open + (closed - open) * smoothstep((s - 0.6) / 0.4)
                    }
                }
            };
            frame.arms.push(ArmPose { pos, euler, grasper });
        }
        frames.push(frame);
    }

    *state = frames.last().expect("dur >= 3").clone();
    frames
}

#[cfg(test)]
mod tests {
    use super::*;
    use gestures::ALL_TASKS;

    #[test]
    fn generated_dataset_validates() {
        for task in ALL_TASKS {
            let ds = generate(&GeneratorConfig::fast(task).with_seed(1));
            assert_eq!(ds.len(), 8);
            ds.validate().unwrap_or_else(|e| panic!("{task}: {e}"));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(9));
        let b = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(9));
        assert_eq!(a, b);
        let c = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(10));
        assert_ne!(a, c);
    }

    #[test]
    fn block_transfer_demos_follow_fig3b_sequence() {
        let ds = generate(&GeneratorConfig::fast(Task::BlockTransfer).with_seed(2));
        for d in &ds.demos {
            assert_eq!(
                d.gesture_sequence(),
                vec![Gesture::G2, Gesture::G12, Gesture::G6, Gesture::G5, Gesture::G11],
                "demo {}",
                d.id
            );
        }
    }

    #[test]
    fn suturing_has_errors_at_roughly_table7_rates() {
        let cfg = GeneratorConfig {
            num_demos: 40,
            duration_scale: 0.3,
            ..GeneratorConfig::new(Task::Suturing)
        };
        let ds = generate(&cfg);
        let mut total = 0usize;
        let mut erroneous = 0usize;
        for d in &ds.demos {
            let seq = d.gesture_sequence();
            total += seq.len();
            erroneous += d.errors.len();
        }
        let rate = erroneous as f32 / total as f32;
        // JIGSAWS annotation: 144 / 793 gestures erroneous ≈ 0.18; our
        // Table VII rates weighted by gesture frequency land in the same
        // range.
        assert!((0.10..0.55).contains(&rate), "gesture error rate {rate}");
    }

    #[test]
    fn fault_free_config_has_no_errors() {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).fault_free().with_seed(3));
        for d in &ds.demos {
            assert!(d.errors.is_empty());
            assert_eq!(d.unsafe_frames(), 0);
        }
    }

    #[test]
    fn unsafe_labels_cover_exactly_the_error_spans() {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(4));
        for d in &ds.demos {
            let mut expect = vec![false; d.len()];
            for e in &d.errors {
                for l in &mut expect[e.span_start..e.span_end] {
                    *l = true;
                }
            }
            assert_eq!(d.unsafe_labels, expect, "demo {}", d.id);
        }
    }

    #[test]
    fn motion_is_continuous_within_safe_demos() {
        // Fault-free demos must have no large frame-to-frame jumps.
        let ds = generate(&GeneratorConfig::fast(Task::BlockTransfer).fault_free().with_seed(5));
        for d in &ds.demos {
            for w in d.frames.windows(2) {
                for (a, b) in w[0].manipulators.iter().zip(w[1].manipulators.iter()) {
                    let step = a.position.distance(b.position);
                    assert!(step < 20.0, "discontinuity of {step} mm in fault-free demo {}", d.id);
                }
            }
        }
    }

    #[test]
    fn supertrials_cycle() {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(6));
        let sts: Vec<usize> = ds.demos.iter().map(|d| d.supertrial).collect();
        assert_eq!(sts, vec![1, 2, 3, 4, 5, 1, 2, 3]);
        assert_eq!(ds.loso_folds().len(), 5);
    }

    #[test]
    fn actual_frame_lies_within_error_span() {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(7));
        for d in &ds.demos {
            for e in &d.errors {
                assert!(
                    (e.span_start..e.span_end).contains(&e.actual_frame),
                    "{}: actual {} outside {}..{}",
                    d.id,
                    e.actual_frame,
                    e.span_start,
                    e.span_end
                );
            }
        }
    }
}
