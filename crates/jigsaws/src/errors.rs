//! Rubric-driven kinematic error injection.
//!
//! Each Table II failure mode has a kinematic *signature* — the pattern the
//! paper's annotators saw in video and the classifiers must learn from
//! kinematics. Injecting the signatures at generation time replaces the
//! paper's manual annotation with exact ground truth (DESIGN.md §2).

use crate::noise::randn;
use crate::pose::FramePose;
use crate::primitives::{ArmSel, GRASPER_OPEN};
use gestures::{error_modes, FaultClass, Gesture, Task};
use kinematics::Vec3;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A concrete kinematic error signature applied to a gesture's frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ErrorSignature {
    /// Oscillatory re-approach ("more than one attempt").
    MultipleAttempts,
    /// Growing wrong-rotation offset with corrective wobble.
    RotationDrift,
    /// Brief grasper opening mid-gesture (unintentional drop).
    GrasperSpike,
    /// Grasper fails to open during a release ramp (failure to dropoff).
    FailedRelease,
    /// One-frame Cartesian discontinuity.
    SuddenJump,
    /// Excursion beyond the visible workspace ("end-effector out of sight").
    OutOfView,
    /// Damped low-effort motion (low pressure, knot left loose).
    DampedEffort,
}

/// Chooses the signature implied by a Table II fault class.
pub fn signature_for(fault: FaultClass, rng: &mut impl Rng) -> ErrorSignature {
    match fault {
        FaultClass::WrongRotation => ErrorSignature::RotationDrift,
        FaultClass::WrongCartesianPosition => {
            if rng.gen_bool(0.5) {
                ErrorSignature::MultipleAttempts
            } else {
                ErrorSignature::OutOfView
            }
        }
        FaultClass::SuddenJump => ErrorSignature::SuddenJump,
        FaultClass::HighGrasperAngle => ErrorSignature::GrasperSpike,
        FaultClass::LowGrasperAngle => ErrorSignature::FailedRelease,
        FaultClass::LowPressure => ErrorSignature::DampedEffort,
    }
}

/// Picks a signature for an erroneous instance of `gesture` from its rubric
/// entries. Returns `None` when the rubric lists no common error (e.g. G10).
pub fn sample_signature(gesture: Gesture, rng: &mut impl Rng) -> Option<ErrorSignature> {
    let modes = error_modes(gesture);
    if modes.is_empty() {
        return None;
    }
    let mode = modes[rng.gen_range(0..modes.len())];
    let cause = mode.causes[rng.gen_range(0..mode.causes.len())];
    Some(signature_for(cause, rng))
}

/// Applies `signature` to the frames of one gesture (mutating the active
/// arm(s) only) and returns the frame offset *within the gesture* at which
/// the error manifests (used as `actual_frame` ground truth).
///
/// # Panics
///
/// Panics if `frames` is empty.
pub fn apply_signature(
    signature: ErrorSignature,
    frames: &mut [FramePose],
    arm: ArmSel,
    rng: &mut impl Rng,
) -> usize {
    assert!(!frames.is_empty(), "apply_signature: empty gesture");
    let n = frames.len();
    let arms = frames[0].arms.len();
    let active: Vec<usize> = (0..arms).filter(|&a| arm.includes(a)).collect();

    match signature {
        ErrorSignature::MultipleAttempts => {
            // Superimpose corrective oscillations over most of the gesture:
            // repeated approach/retreat with a jerky (velocity-visible)
            // waveform.
            let cycles = rng.gen_range(3..=5) as f32;
            let amp = 14.0 + 5.0 * randn(rng).abs();
            let onset = n / 5;
            let dir = Vec3::new(randn(rng), randn(rng), randn(rng)).normalized();
            for (t, f) in frames.iter_mut().enumerate().skip(onset) {
                let phase = (t - onset) as f32 / (n - onset).max(1) as f32;
                let wave = (phase * cycles * 2.0 * std::f32::consts::PI).sin();
                // Sharpen the wave so per-frame velocity spikes stand out.
                let wave = wave.signum() * wave.abs().sqrt();
                for &a in &active {
                    f.arms[a].pos = f.arms[a].pos + dir * (amp * wave);
                }
            }
            onset
        }
        ErrorSignature::RotationDrift => {
            let onset = n / 4;
            let drift = (0.5 + 0.3 * randn(rng).abs(), 0.4, 0.3);
            for (t, f) in frames.iter_mut().enumerate().skip(onset) {
                let s = (t - onset) as f32 / (n - onset).max(1) as f32;
                let wobble = (s * 6.0 * std::f32::consts::PI).sin() * 0.15;
                for &a in &active {
                    let e = &mut f.arms[a].euler;
                    e.0 += drift.0 * s + wobble;
                    e.1 += drift.1 * s;
                    e.2 += drift.2 * s + wobble * 0.5;
                }
            }
            onset
        }
        ErrorSignature::GrasperSpike => {
            // Grasper pops open mid-gesture and the dropped object forces a
            // recovery: the grasper stays disturbed for the rest of the
            // gesture.
            let peak = n / 2;
            let width = (n / 5).max(2);
            for (t, f) in frames.iter_mut().enumerate() {
                let bump = if t < peak {
                    let d = (peak - t) as f32 / width as f32;
                    (GRASPER_OPEN - 0.1) * (-d * d).exp()
                } else {
                    // Post-drop fumbling: half-open with jitter.
                    0.5 * GRASPER_OPEN + 0.1 * randn(rng)
                };
                for &a in &active {
                    f.arms[a].grasper = (f.arms[a].grasper + bump).clamp(0.0, GRASPER_OPEN * 1.1);
                }
            }
            peak
        }
        ErrorSignature::FailedRelease => {
            // Clamp the grasper low through the would-be release.
            let stuck = 0.15 + 0.1 * randn(rng).abs();
            for f in frames.iter_mut() {
                for &a in &active {
                    f.arms[a].grasper = f.arms[a].grasper.min(stuck);
                }
            }
            // The failure is observable at the end, when the drop should
            // have happened.
            n - 1
        }
        ErrorSignature::SuddenJump => {
            let at = rng.gen_range(n / 4..(3 * n / 4).max(n / 4 + 1));
            let jump = Vec3::new(randn(rng), randn(rng), randn(rng)).normalized()
                * (25.0 + 10.0 * randn(rng).abs());
            for f in frames.iter_mut().skip(at) {
                for &a in &active {
                    f.arms[a].pos = f.arms[a].pos + jump;
                }
            }
            at
        }
        ErrorSignature::OutOfView => {
            // Rush out of the visible workspace early and linger there.
            let onset = n / 5;
            let excursion =
                Vec3::new(160.0 * randn(rng).signum(), 140.0 * randn(rng).signum(), 0.0);
            for (t, f) in frames.iter_mut().enumerate().skip(onset) {
                let s = (t - onset) as f32 / (n - onset).max(1) as f32;
                // Fast exit (by 20% of the remaining gesture), plateau away
                // from the workspace, late return.
                let bump = if s < 0.2 {
                    s / 0.2
                } else if s < 0.85 {
                    1.0
                } else {
                    (1.0 - s) / 0.15
                };
                for &a in &active {
                    f.arms[a].pos = f.arms[a].pos + excursion * (bump * 0.7);
                }
            }
            onset
        }
        ErrorSignature::DampedEffort => {
            // Compress motion toward the gesture's start pose: low force,
            // low displacement.
            let anchor: Vec<Vec3> = active.iter().map(|&a| frames[0].arms[a].pos).collect();
            for f in frames.iter_mut() {
                for (k, &a) in active.iter().enumerate() {
                    f.arms[a].pos = anchor[k].lerp(f.arms[a].pos, 0.35);
                }
            }
            n / 2
        }
    }
}

/// Per-gesture error rates for a task, matching the class imbalance of
/// Table VII (Suturing: G4/G6 error-heavy, G5 rare; Block Transfer: G11
/// error-heavy).
pub fn default_error_rates(task: Task) -> Vec<(Gesture, f32)> {
    use Gesture::*;
    match task {
        Task::Suturing => vec![
            (G1, 0.29),
            (G2, 0.25),
            (G3, 0.41),
            (G4, 0.77),
            (G5, 0.05),
            (G6, 0.74),
            (G8, 0.45),
            (G9, 0.59),
            (G10, 0.0),
            (G11, 0.0),
        ],
        Task::KnotTying => {
            vec![(G1, 0.2), (G11, 0.15), (G12, 0.2), (G13, 0.3), (G14, 0.2), (G15, 0.25)]
        }
        Task::NeedlePassing => vec![
            (G1, 0.25),
            (G2, 0.3),
            (G3, 0.35),
            (G4, 0.5),
            (G5, 0.1),
            (G6, 0.45),
            (G8, 0.3),
            (G11, 0.1),
        ],
        Task::BlockTransfer => vec![(G2, 0.0), (G5, 0.24), (G6, 0.25), (G11, 0.53), (G12, 0.0)],
    }
}

/// Looks up the error rate for `gesture` in a rate table (0 if absent).
pub fn rate_for(rates: &[(Gesture, f32)], gesture: Gesture) -> f32 {
    rates.iter().find(|(g, _)| *g == gesture).map(|&(_, r)| r).unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pose::ArmPose;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn straight_line(n: usize) -> Vec<FramePose> {
        (0..n)
            .map(|t| {
                let mut f = FramePose { arms: vec![ArmPose::default(); 2] };
                f.arms[1].pos = Vec3::new(t as f32, 0.0, 0.0);
                f.arms[1].grasper = 0.2;
                f
            })
            .collect()
    }

    #[test]
    fn grasper_spike_opens_grasper() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut frames = straight_line(30);
        let at =
            apply_signature(ErrorSignature::GrasperSpike, &mut frames, ArmSel::Right, &mut rng);
        let max = frames.iter().map(|f| f.arms[1].grasper).fold(0.0f32, f32::max);
        assert!(max > 0.8, "spike should open grasper, max {max}");
        assert!(at < 30);
        // Left arm untouched.
        assert!(frames.iter().all(|f| f.arms[0].grasper == 0.5));
    }

    #[test]
    fn failed_release_keeps_grasper_low() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut frames = straight_line(20);
        for f in &mut frames {
            f.arms[1].grasper = 1.2; // would-be release
        }
        let at =
            apply_signature(ErrorSignature::FailedRelease, &mut frames, ArmSel::Right, &mut rng);
        assert!(frames.iter().all(|f| f.arms[1].grasper < 0.5));
        assert_eq!(at, 19);
    }

    #[test]
    fn sudden_jump_creates_discontinuity() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut frames = straight_line(40);
        let at = apply_signature(ErrorSignature::SuddenJump, &mut frames, ArmSel::Right, &mut rng);
        let step = frames[at].arms[1].pos.distance(frames[at - 1].arms[1].pos);
        assert!(step > 15.0, "jump magnitude {step} too small");
    }

    #[test]
    fn multiple_attempts_adds_reversals() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut frames = straight_line(60);
        let before_path: f32 =
            frames.windows(2).map(|w| w[1].arms[1].pos.distance(w[0].arms[1].pos)).sum();
        apply_signature(ErrorSignature::MultipleAttempts, &mut frames, ArmSel::Right, &mut rng);
        // Oscillatory re-approach: total path length grows well beyond the
        // clean straight-line path while the net displacement stays similar.
        let after_path: f32 =
            frames.windows(2).map(|w| w[1].arms[1].pos.distance(w[0].arms[1].pos)).sum();
        assert!(
            after_path > 1.5 * before_path,
            "path {after_path} should exceed clean path {before_path}"
        );
    }

    #[test]
    fn out_of_view_exceeds_workspace() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut frames = straight_line(30);
        apply_signature(ErrorSignature::OutOfView, &mut frames, ArmSel::Right, &mut rng);
        let max = frames
            .iter()
            .map(|f| f.arms[1].pos.x.abs().max(f.arms[1].pos.y.abs()))
            .fold(0.0f32, f32::max);
        assert!(max > 60.0, "excursion too small: {max}");
    }

    #[test]
    fn damped_effort_shrinks_displacement() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut frames = straight_line(30);
        let before = frames[29].arms[1].pos.distance(frames[0].arms[1].pos);
        apply_signature(ErrorSignature::DampedEffort, &mut frames, ArmSel::Right, &mut rng);
        let after = frames[29].arms[1].pos.distance(frames[0].arms[1].pos);
        assert!(after < before * 0.6, "displacement {after} vs {before}");
    }

    #[test]
    fn rotation_drift_changes_euler() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut frames = straight_line(30);
        apply_signature(ErrorSignature::RotationDrift, &mut frames, ArmSel::Right, &mut rng);
        let last = frames[29].arms[1].euler;
        assert!(last.0.abs() + last.1.abs() + last.2.abs() > 0.5);
    }

    #[test]
    fn g10_has_no_signature() {
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(sample_signature(Gesture::G10, &mut rng), None);
        assert!(sample_signature(Gesture::G4, &mut rng).is_some());
    }

    #[test]
    fn default_rates_reflect_table7_imbalance() {
        let rates = default_error_rates(Task::Suturing);
        assert!(rate_for(&rates, Gesture::G4) > 0.7);
        assert!(rate_for(&rates, Gesture::G5) < 0.1);
        assert_eq!(rate_for(&rates, Gesture::G10), 0.0);
        let bt = default_error_rates(Task::BlockTransfer);
        assert!(rate_for(&bt, Gesture::G11) > 0.5);
    }
}
