//! Gaussian noise helper (Box–Muller), since `rand` alone has no normal
//! distribution and `rand_distr` is outside the sanctioned dependency set.

use rand::Rng;

/// One standard-normal draw via Box–Muller.
pub fn randn(rng: &mut impl Rng) -> f32 {
    let u1: f32 = rng.gen_range(1e-7..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Normal draw with the given mean and standard deviation.
pub fn randn_scaled(rng: &mut impl Rng, mean: f32, std: f32) -> f32 {
    mean + std * randn(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn randn_has_zero_mean_unit_variance() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let draws: Vec<f32> = (0..n).map(|_| randn(&mut rng)).collect();
        let mean = draws.iter().sum::<f32>() / n as f32;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn scaled_draw_respects_parameters() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let draws: Vec<f32> = (0..n).map(|_| randn_scaled(&mut rng, 5.0, 0.5)).collect();
        let mean = draws.iter().sum::<f32>() / n as f32;
        assert!((mean - 5.0).abs() < 0.02, "mean {mean}");
    }
}
