//! Intermediate pose representation used during synthesis.
//!
//! The generator works in position/Euler/grasper space and converts to the
//! full 19-variable [`kinematics::ManipulatorState`] (rotation matrices and
//! finite-difference velocities) only once a demonstration is assembled.

use kinematics::{KinematicSample, ManipulatorState, Mat3, Vec3};

/// Pose of one arm at one frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArmPose {
    /// End-effector position (mm).
    pub pos: Vec3,
    /// Intrinsic XYZ Euler angles (rad).
    pub euler: (f32, f32, f32),
    /// Grasper angle (rad).
    pub grasper: f32,
}

impl Default for ArmPose {
    fn default() -> Self {
        Self { pos: Vec3::zero(), euler: (0.0, 0.0, 0.0), grasper: 0.5 }
    }
}

/// Poses of all arms at one frame.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FramePose {
    /// Per-arm poses (`[left, right]`).
    pub arms: Vec<ArmPose>,
}

/// Converts a pose sequence to kinematic samples, deriving linear velocity
/// as `(pos_t - pos_{t-1}) * hz` and angular velocity from Euler-angle
/// differences (first frame gets zero velocities).
///
/// # Panics
///
/// Panics if `poses` is empty or arm counts are inconsistent.
pub fn poses_to_samples(poses: &[FramePose], hz: f32) -> Vec<KinematicSample> {
    assert!(!poses.is_empty(), "poses_to_samples: empty sequence");
    let arms = poses[0].arms.len();
    assert!(poses.iter().all(|p| p.arms.len() == arms), "inconsistent arm counts");

    poses
        .iter()
        .enumerate()
        .map(|(t, frame)| {
            let prev = if t == 0 { frame } else { &poses[t - 1] };
            let manipulators = frame
                .arms
                .iter()
                .zip(prev.arms.iter())
                .map(|(cur, pre)| {
                    let lin = if t == 0 { Vec3::zero() } else { (cur.pos - pre.pos) * hz };
                    let ang = if t == 0 {
                        Vec3::zero()
                    } else {
                        Vec3::new(
                            (cur.euler.0 - pre.euler.0) * hz,
                            (cur.euler.1 - pre.euler.1) * hz,
                            (cur.euler.2 - pre.euler.2) * hz,
                        )
                    };
                    ManipulatorState {
                        position: cur.pos,
                        rotation: Mat3::from_euler(cur.euler.0, cur.euler.1, cur.euler.2),
                        grasper_angle: cur.grasper,
                        linear_velocity: lin,
                        angular_velocity: ang,
                    }
                })
                .collect();
            KinematicSample::new(manipulators)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn velocity_is_finite_difference() {
        let mut a = FramePose { arms: vec![ArmPose::default(); 2] };
        let mut b = a.clone();
        b.arms[0].pos = Vec3::new(1.0, 0.0, 0.0);
        b.arms[0].euler = (0.5, 0.0, 0.0);
        let samples = poses_to_samples(&[a.clone(), b], 30.0);
        assert_eq!(samples[0].manipulators[0].linear_velocity, Vec3::zero());
        assert_eq!(samples[1].manipulators[0].linear_velocity, Vec3::new(30.0, 0.0, 0.0));
        assert!((samples[1].manipulators[0].angular_velocity.x - 15.0).abs() < 1e-5);
        // Untouched arm has zero velocity.
        assert_eq!(samples[1].manipulators[1].linear_velocity, Vec3::zero());
        a.arms.truncate(2);
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn rejects_empty() {
        let _ = poses_to_samples(&[], 30.0);
    }
}
