//! Criterion benches for the substrate systems: simulator stepping, the
//! vision pipeline, DTW, KDE, and raw layer forward passes.

use criterion::{criterion_group, criterion_main, Criterion};
use eval::{dtw_1d, GaussianKde};
use nn::layers::{LayerSpec, Mode, Padding};
use nn::{Mat, Network, NetworkSpec};
use raven_sim::{run_block_transfer, NoFaults, SimConfig};
use std::hint::black_box;
use vision::{ssim, VirtualCamera};

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("raven_sim_trial_400_ticks", |b| {
        let cfg = SimConfig { hz: 100.0, duration_s: 4.0, seed: 3, tremor: 0.3 };
        b.iter(|| black_box(run_block_transfer(black_box(&cfg), &mut NoFaults)))
    });
}

fn bench_vision(c: &mut Criterion) {
    let cam = VirtualCamera::default();
    let block = kinematics::Vec3::new(10.0, 0.0, 8.0);
    let receptacle = kinematics::Vec3::new(-50.0, 30.0, 0.0);
    let arms = [kinematics::Vec3::new(12.0, 0.0, 12.0)];
    let a = cam.render(block, receptacle, &arms);
    let b2 = cam.render(kinematics::Vec3::new(11.0, 0.0, 7.0), receptacle, &arms);

    c.bench_function("camera_render_96x64", |b| {
        b.iter(|| black_box(cam.render(black_box(block), receptacle, &arms)))
    });
    c.bench_function("ssim_96x64", |bch| bch.iter(|| black_box(ssim(&a, &b2))));
    c.bench_function("contour_track_96x64", |bch| {
        bch.iter(|| black_box(vision::track_brightest(&a, 200)))
    });
}

fn bench_metrics(c: &mut Criterion) {
    let a: Vec<f32> = (0..240).map(|i| (i as f32 * 0.1).sin()).collect();
    let b: Vec<f32> = (0..240).map(|i| (i as f32 * 0.1 + 0.4).sin()).collect();
    c.bench_function("dtw_240x240", |bench| {
        bench.iter(|| black_box(dtw_1d(black_box(&a), black_box(&b), None)))
    });

    let pts: Vec<Vec<f32>> =
        (0..200).map(|i| vec![(i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()]).collect();
    let kde = GaussianKde::fit(&pts).unwrap();
    c.bench_function("kde_pdf_200pts_2d", |bench| {
        bench.iter(|| black_box(kde.pdf(black_box(&[0.3, -0.2]))))
    });
}

fn bench_layers(c: &mut Criterion) {
    let x = Mat::full(5, 38, 0.3);
    let mut lstm = Network::new(
        NetworkSpec::new(vec![
            LayerSpec::Lstm { in_dim: 38, hidden: 64, return_sequences: true },
            LayerSpec::Lstm { in_dim: 64, hidden: 32, return_sequences: false },
        ]),
        1,
    );
    c.bench_function("stacked_lstm_64_32_forward_w5", |b| {
        b.iter(|| black_box(lstm.forward(black_box(&x), Mode::Eval)))
    });

    let mut conv = Network::new(
        NetworkSpec::new(vec![
            LayerSpec::Conv1d {
                in_channels: 38,
                out_channels: 32,
                kernel: 3,
                padding: Padding::Same,
            },
            LayerSpec::Relu,
            LayerSpec::GlobalMaxPool,
            LayerSpec::Dense { in_dim: 32, out_dim: 2 },
        ]),
        1,
    );
    let x10 = Mat::full(10, 38, 0.3);
    c.bench_function("conv1d_head_forward_w10", |b| {
        b.iter(|| black_box(conv.forward(black_box(&x10), Mode::Eval)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_simulator, bench_vision, bench_metrics, bench_layers
}
criterion_main!(benches);
