//! Serving throughput: decisions/sec of the sharded multi-threaded
//! `ShardedMonitorPool` vs. the single-threaded sequential `MonitorPool`
//! baseline, across session count × worker count.
//!
//! The acceptance criterion for the serving layer is **≥ 2× decisions/sec
//! over the single-threaded baseline at 16 sessions on 4 worker threads**;
//! the table printed by a full run shows where that lands on the current
//! host.
//!
//! ```sh
//! cargo bench -p bench --bench throughput            # full measurement
//! cargo bench -p bench --bench throughput -- --smoke # CI: one tiny pass
//! ```

use bench::{jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
use context_monitor::{ContextMode, MonitorPool, TrainedPipeline};
use gestures::Task;
use kinematics::KinematicSample;
use std::sync::Arc;
use std::time::Instant;

struct Workload {
    /// Per-session frame streams (cycled out of one demo).
    frames: Vec<KinematicSample>,
    frames_per_session: usize,
}

impl Workload {
    fn frame(&self, t: usize) -> &KinematicSample {
        &self.frames[t % self.frames.len()]
    }
}

/// Sequential baseline: every frame of every session through the
/// single-threaded pool, round-robin over sessions per time step (the same
/// submission order the sharded pool receives).
fn run_sequential(
    pipeline: TrainedPipeline,
    sessions: usize,
    w: &Workload,
) -> (TrainedPipeline, f64, usize) {
    let mut pool = MonitorPool::with_sessions(pipeline, ContextMode::Predicted, sessions);
    let start = Instant::now();
    let mut decisions = 0usize;
    for t in 0..w.frames_per_session {
        for s in 0..sessions {
            if pool.push(s, w.frame(t)).expect("Predicted mode").is_some() {
                decisions += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (pool.into_pipeline(), decisions as f64 / elapsed, decisions)
}

/// Sharded pool: identical submission order; throughput measured from the
/// first submit to the last flushed decision.
fn run_sharded(
    pipeline: Arc<TrainedPipeline>,
    sessions: usize,
    workers: usize,
    w: &Workload,
) -> (f64, usize, context_monitor::PoolStats) {
    let cfg = ServeConfig { workers, threshold: 0.5 };
    let mut pool =
        ShardedMonitorPool::with_sessions(pipeline, ContextMode::Predicted, cfg, sessions);
    let start = Instant::now();
    for t in 0..w.frames_per_session {
        for s in 0..sessions {
            pool.submit(s, w.frame(t)).expect("Predicted mode");
        }
    }
    let decisions = pool.flush().iter().filter(|d| d.output.is_some()).count();
    let elapsed = start.elapsed().as_secs_f64();
    (decisions as f64 / elapsed, decisions, pool.stats())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds = jigsaws_dataset(Task::Suturing, Scale::Fast);
    let mut cfg = suturing_monitor_cfg(Scale::Fast);
    cfg.train.epochs = 2; // weights don't affect latency
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut pipeline = TrainedPipeline::train(&ds, &idx, &cfg);

    let workload = Workload {
        frames: ds.demos[0].frames.clone(),
        frames_per_session: if smoke { 80 } else { 600 },
    };
    let session_counts: &[usize] = if smoke { &[4] } else { &[4, 16] };
    let worker_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "serving throughput ({} frames/session, Suturing fast config, {} core(s)){}",
        workload.frames_per_session,
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!("gemm backend: {}", nn::kernels::gemm_backend_label());
    if cores < 4 {
        println!(
            "note: host exposes {cores} core(s); worker threads time-slice instead of \
             running in parallel, so speedups above ~1x require >= workers cores"
        );
    }
    println!("{:<38} {:>14} {:>10}", "configuration", "decisions/s", "speedup");

    for &sessions in session_counts {
        let (returned, baseline_rate, baseline_n) = run_sequential(pipeline, sessions, &workload);
        pipeline = returned;
        println!(
            "{:<38} {:>14.0} {:>9.2}x",
            format!("sequential MonitorPool, {sessions} sessions"),
            baseline_rate,
            1.0
        );
        let shared = Arc::new(pipeline);
        for &workers in worker_counts {
            let (rate, n, stats) = run_sharded(Arc::clone(&shared), sessions, workers, &workload);
            assert_eq!(
                n, baseline_n,
                "sharded pool must emit exactly the baseline's decision count"
            );
            assert_eq!(stats.compute.count, n, "telemetry must cover every warm decision");
            assert_eq!(
                stats.queue.count,
                sessions * workload.frames_per_session,
                "queueing telemetry must cover every frame, warm-up included"
            );
            println!(
                "{:<38} {:>14.0} {:>9.2}x",
                format!("sharded, {sessions} sessions x {workers} workers"),
                rate,
                rate / baseline_rate
            );
            println!("{:<38} {}", "", stats.compute);
            println!("{:<38} queueing (submit→drain) p99 {:.3} ms", "", stats.queue.p99_ms);
        }
        pipeline = Arc::try_unwrap(shared).ok().expect("workers joined");
    }
}
