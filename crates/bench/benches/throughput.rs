//! Serving throughput and density: decisions/sec and **sessions-per-core**
//! of the sharded `ShardedMonitorPool` vs. the single-threaded sequential
//! `MonitorPool` baseline, across session count × worker count × numeric
//! tier (f32 vs the calibrated int8 quantized tier).
//!
//! The acceptance criterion for the serving layer is **≥ 2× decisions/sec
//! over the single-threaded baseline at 16 sessions on 4 worker threads**;
//! the quantized tier's criterion is a measured sessions-per-core win over
//! f32 at the same configuration. Sessions-per-core divides each
//! configuration's per-core decision rate by the paper's 30 Hz kinematic
//! frame rate: how many live procedures one core can monitor in real time.
//!
//! Besides the printed table, a machine-readable summary is written to
//! `BENCH_throughput.json` at the repo root (hand-formatted — the bench
//! crate deliberately has no serde dependency), next to `BENCH_gemm.json`.
//!
//! ```sh
//! cargo bench -p bench --bench throughput            # full measurement
//! cargo bench -p bench --bench throughput -- --smoke # CI: one tiny pass
//! ```

use bench::{jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
use context_monitor::{ContextMode, MonitorPool, PoolStats, Precision, TrainedPipeline};
use gestures::Task;
use kinematics::KinematicSample;
use std::sync::Arc;
use std::time::Instant;

/// The paper's kinematic sampling rate: one decision is due per session
/// every 1/30 s, so `sessions_per_core = rate / workers / FRAME_HZ`.
const FRAME_HZ: f64 = 30.0;

struct Workload {
    /// Per-session frame streams (cycled out of one demo).
    frames: Vec<KinematicSample>,
    frames_per_session: usize,
}

impl Workload {
    fn frame(&self, t: usize) -> &KinematicSample {
        &self.frames[t % self.frames.len()]
    }
}

/// One measured configuration, printed and serialized to the JSON summary.
struct Row {
    tier: Precision,
    sessions: usize,
    workers: usize,
    rate: f64,
    sessions_per_core: f64,
    stats: PoolStats,
}

/// Sequential baseline: every frame of every session through the
/// single-threaded pool, round-robin over sessions per time step (the same
/// submission order the sharded pool receives). Always the f32 tier — the
/// sequential pool is the historical reference the speedup column is
/// anchored to.
fn run_sequential(
    pipeline: TrainedPipeline,
    sessions: usize,
    w: &Workload,
) -> (TrainedPipeline, f64, usize) {
    let mut pool = MonitorPool::with_sessions(pipeline, ContextMode::Predicted, sessions);
    let start = Instant::now();
    let mut decisions = 0usize;
    for t in 0..w.frames_per_session {
        for s in 0..sessions {
            if pool.push(s, w.frame(t)).expect("Predicted mode").is_some() {
                decisions += 1;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    (pool.into_pipeline(), decisions as f64 / elapsed, decisions)
}

/// Sharded pool on a chosen numeric tier: identical submission order;
/// throughput measured from the first submit to the last flushed decision.
fn run_sharded(
    pipeline: Arc<TrainedPipeline>,
    sessions: usize,
    workers: usize,
    precision: Precision,
    w: &Workload,
) -> (f64, usize, PoolStats) {
    let cfg = ServeConfig { workers, threshold: 0.5, precision };
    let mut pool =
        ShardedMonitorPool::with_sessions(pipeline, ContextMode::Predicted, cfg, sessions);
    let start = Instant::now();
    for t in 0..w.frames_per_session {
        for s in 0..sessions {
            pool.submit(s, w.frame(t)).expect("Predicted mode");
        }
    }
    let decisions = pool.flush().iter().filter(|d| d.output.is_some()).count();
    let elapsed = start.elapsed().as_secs_f64();
    (decisions as f64 / elapsed, decisions, pool.stats())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ds = jigsaws_dataset(Task::Suturing, Scale::Fast);
    let mut cfg = suturing_monitor_cfg(Scale::Fast);
    cfg.train.epochs = 2; // weights don't affect latency
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut pipeline = TrainedPipeline::train(&ds, &idx, &cfg);
    pipeline.quantize(&ds, &idx).expect("built-in specs are quantizable");

    let workload = Workload {
        frames: ds.demos[0].frames.clone(),
        frames_per_session: if smoke { 80 } else { 600 },
    };
    let session_counts: &[usize] = if smoke { &[4] } else { &[4, 16] };
    let worker_counts: &[usize] = if smoke { &[2] } else { &[1, 2, 4] };
    let tiers = [Precision::F32, Precision::Int8];

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!(
        "serving throughput ({} frames/session, Suturing fast config, {} core(s)){}",
        workload.frames_per_session,
        cores,
        if smoke { " [smoke]" } else { "" }
    );
    println!("gemm backend: {}", nn::kernels::gemm_backend_label());
    if cores < 4 {
        println!(
            "note: host exposes {cores} core(s); worker threads time-slice instead of \
             running in parallel, so speedups above ~1x require >= workers cores"
        );
    }
    println!("{:<44} {:>12} {:>9} {:>10}", "configuration", "decisions/s", "speedup", "sess/core");

    let mut rows: Vec<Row> = Vec::new();
    for &sessions in session_counts {
        let (returned, baseline_rate, baseline_n) = run_sequential(pipeline, sessions, &workload);
        pipeline = returned;
        println!(
            "{:<44} {:>12.0} {:>8.2}x {:>10.1}",
            format!("sequential f32 MonitorPool, {sessions} sessions"),
            baseline_rate,
            1.0,
            baseline_rate / FRAME_HZ
        );
        let shared = Arc::new(pipeline);
        for &tier in &tiers {
            // The f32 rate at the same (sessions, workers) anchors the
            // int8 density comparison, so f32 runs first in `tiers`.
            for &workers in worker_counts {
                let (rate, n, stats) =
                    run_sharded(Arc::clone(&shared), sessions, workers, tier, &workload);
                assert_eq!(
                    n, baseline_n,
                    "sharded pool must emit exactly the baseline's decision count \
                     (warm-up and routing coverage are tier-independent)"
                );
                assert_eq!(stats.compute.count, n, "telemetry must cover every warm decision");
                assert_eq!(
                    stats.queue.count,
                    sessions * workload.frames_per_session,
                    "queueing telemetry must cover every frame, warm-up included"
                );
                let sessions_per_core = rate / workers as f64 / FRAME_HZ;
                println!(
                    "{:<44} {:>12.0} {:>8.2}x {:>10.1}",
                    format!("sharded {tier}, {sessions} sessions x {workers} workers"),
                    rate,
                    rate / baseline_rate,
                    sessions_per_core
                );
                println!("{:<44} {}", "", stats.compute);
                println!("{:<44} queueing (submit→drain) p99 {:.3} ms", "", stats.queue.p99_ms);
                rows.push(Row { tier, sessions, workers, rate, sessions_per_core, stats });
            }
        }
        pipeline = Arc::try_unwrap(shared).ok().expect("workers joined");
    }

    // Density verdict: int8 vs f32 at each shared configuration.
    for row in rows.iter().filter(|r| r.tier == Precision::Int8) {
        if let Some(f32_row) = rows.iter().find(|r| {
            r.tier == Precision::F32 && r.sessions == row.sessions && r.workers == row.workers
        }) {
            println!(
                "int8 density win @ {} sessions x {} workers: {:.2}x sessions-per-core \
                 ({:.1} vs {:.1})",
                row.sessions,
                row.workers,
                row.sessions_per_core / f32_row.sessions_per_core,
                row.sessions_per_core,
                f32_row.sessions_per_core
            );
        }
    }

    write_summary(&rows, smoke, cores, workload.frames_per_session);
}

/// Hand-formatted JSON summary (no serde in the bench crate) written to the
/// repo root next to `BENCH_gemm.json`, newest run wins.
fn write_summary(rows: &[Row], smoke: bool, cores: usize, frames_per_session: usize) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"throughput\",\n  \"smoke\": {smoke},\n  \"cores\": {cores},\n  \
         \"frames_per_session\": {frames_per_session},\n  \"frame_hz\": {FRAME_HZ},\n  \
         \"gemm_backend\": \"{}\",\n  \"rows\": [\n",
        nn::kernels::gemm_backend_label()
    ));
    for (idx, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tier\": \"{}\", \"sessions\": {}, \"workers\": {},\n     \
             \"decisions_per_sec\": {:.1}, \"sessions_per_core\": {:.2},\n     \
             \"compute_p50_ms\": {:.4}, \"compute_p99_ms\": {:.4},\n     \
             \"queue_p50_ms\": {:.4}, \"queue_p99_ms\": {:.4}}}{}\n",
            r.tier,
            r.sessions,
            r.workers,
            r.rate,
            r.sessions_per_core,
            r.stats.compute.p50_ms,
            r.stats.compute.p99_ms,
            r.stats.queue.p50_ms,
            r.stats.queue.p99_ms,
            if idx + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_throughput.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote tier/backend density summary to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
