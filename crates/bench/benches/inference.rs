//! Criterion benches for the paper's compute-time claims (Table VIII:
//! 1.5–3.2 ms per sample on the authors' GPU workstation; our scaled-down
//! models on CPU should land in the same order of magnitude).

use bench::{jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::{ContextMode, SafetyMonitor, TrainedPipeline};
use criterion::{criterion_group, criterion_main, Criterion};
use gestures::Task;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let ds = jigsaws_dataset(Task::Suturing, Scale::Fast);
    let mut cfg = suturing_monitor_cfg(Scale::Fast);
    cfg.train.epochs = 2; // weights don't affect latency
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut pipeline = TrainedPipeline::train(&ds, &idx, &cfg);

    let demo = &ds.demos[0];
    // Stage-specific windows: the gesture stage uses its own (wider)
    // feature window than the error stage.
    let feats = pipeline.normalizer.apply(&demo.feature_matrix(&cfg.features));
    let window = feats.slice_rows(0, cfg.window.width);
    let gfeats = pipeline
        .gesture_normalizer
        .apply(&demo.feature_matrix(&cfg.gesture_features));
    let gwindow = gfeats.slice_rows(0, cfg.gesture_window);

    c.bench_function("gesture_classifier_window", |b| {
        b.iter(|| black_box(pipeline.gesture_net.predict(black_box(&gwindow))))
    });

    let g = *pipeline.error_nets.keys().next().expect("a dedicated classifier");
    c.bench_function("error_classifier_window", |b| {
        b.iter(|| black_box(pipeline.score_window(black_box(&window), g, ContextMode::Perfect)))
    });

    c.bench_function("full_pipeline_window", |b| {
        b.iter(|| {
            let g = pipeline.gesture_net.predict(black_box(&gwindow)).argmax_row(0);
            black_box(pipeline.score_window(&window, g, ContextMode::Predicted))
        })
    });

    // Streaming monitor: cost of one frame push (includes normalization and
    // the ring buffers).
    let saved = pipeline.save();
    let mut monitor =
        SafetyMonitor::new(TrainedPipeline::from_saved(saved), ContextMode::Predicted);
    let warm = cfg.window.width.max(cfg.gesture_window);
    for frame in demo.frames.iter().take(warm) {
        let _ = monitor.push(frame);
    }
    let frame = demo.frames[warm].clone();
    c.bench_function("monitor_push_frame", |b| {
        b.iter(|| black_box(monitor.push(black_box(&frame))))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_inference
}
criterion_main!(benches);
