//! Criterion benches for the paper's compute-time claims (Table VIII:
//! 1.5–3.2 ms per sample on the authors' GPU workstation; our scaled-down
//! models on CPU should land in the same order of magnitude).
//!
//! Each stage is measured twice: once through the historical allocating
//! path (`Network::predict`, fresh activation buffers per window — what
//! both the offline and online code used before the `InferenceEngine`
//! refactor) and once through the allocation-free path
//! (`Network::predict_scratch` / `score_window_scratch`, caller-owned
//! scratch buffers) that the engine drives. The `_alloc` rows are the
//! pre-refactor baseline the acceptance criterion compares against.

use bench::{jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::{ContextMode, MonitorPool, SafetyMonitor, TrainedPipeline};
use criterion::{criterion_group, criterion_main, Criterion};
use gestures::Task;
use nn::Mat;
use std::hint::black_box;

fn bench_inference(c: &mut Criterion) {
    let ds = jigsaws_dataset(Task::Suturing, Scale::Fast);
    let mut cfg = suturing_monitor_cfg(Scale::Fast);
    cfg.train.epochs = 2; // weights don't affect latency
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut pipeline = TrainedPipeline::train(&ds, &idx, &cfg);

    let demo = &ds.demos[0];
    // Stage-specific windows: the gesture stage uses its own (wider)
    // feature window than the error stage.
    let feats = pipeline.normalizer.apply(&demo.feature_matrix(&cfg.features));
    let window = feats.slice_rows(0, cfg.window.width);
    let gfeats = pipeline.gesture_normalizer.apply(&demo.feature_matrix(&cfg.gesture_features));
    let gwindow = gfeats.slice_rows(0, cfg.gesture_window);

    // Stage 1 per window: allocating baseline vs reused buffers.
    c.bench_function("gesture_window_alloc (pre-refactor)", |b| {
        b.iter(|| black_box(pipeline.gesture_net.predict(black_box(&gwindow))))
    });
    let mut logits = Mat::zeros(0, 0);
    let mut gscratch = pipeline.gesture_net.make_scratch();
    c.bench_function("gesture_window_into (engine path)", |b| {
        b.iter(|| {
            pipeline.gesture_net.predict_scratch(black_box(&gwindow), &mut logits, &mut gscratch);
            black_box(logits.argmax_row(0))
        })
    });

    // Stage 2 per window. The baseline reproduces the literal pre-refactor
    // implementation (the historical `predict_proba`): a caching `forward`
    // pass plus a fresh softmax Vec per window.
    let g = *pipeline.error_nets.keys().next().expect("a dedicated classifier");
    c.bench_function("error_window_alloc (pre-refactor)", |b| {
        let net = pipeline.error_nets.get_mut(&g).expect("dedicated classifier");
        b.iter(|| black_box(nn::loss::softmax(net.predict(black_box(&window)).row(0))[1]))
    });
    let mut probs = [0.0f32; 2];
    let mut escratch = pipeline.error_scratch();
    c.bench_function("error_window_into (engine path)", |b| {
        b.iter(|| {
            black_box(pipeline.score_window_scratch(
                black_box(&window),
                g,
                ContextMode::Perfect,
                &mut logits,
                &mut probs,
                &mut escratch,
            ))
        })
    });

    // Full two-stage decision per window.
    c.bench_function("full_pipeline_window (engine path)", |b| {
        b.iter(|| {
            pipeline.gesture_net.predict_scratch(black_box(&gwindow), &mut logits, &mut gscratch);
            let g = logits.argmax_row(0);
            black_box(pipeline.score_window_scratch(
                &window,
                g,
                ContextMode::Predicted,
                &mut logits,
                &mut probs,
                &mut escratch,
            ))
        })
    });

    // Streaming monitor: cost of one frame push end-to-end (feature
    // extraction, normalization, windowing, both stages, smoothing).
    let saved = pipeline.save();
    let mut monitor =
        SafetyMonitor::new(TrainedPipeline::from_saved(saved), ContextMode::Predicted);
    let warm = cfg.window.width.max(cfg.gesture_window);
    for frame in demo.frames.iter().take(warm) {
        let _ = monitor.push(frame);
    }
    let frame = demo.frames[warm].clone();
    c.bench_function("monitor_push_frame", |b| {
        b.iter(|| black_box(monitor.push(black_box(&frame))))
    });

    // Many concurrent sessions over one shared pipeline.
    let mut pool = MonitorPool::with_sessions(monitor.into_pipeline(), ContextMode::Predicted, 8);
    for frame in demo.frames.iter().take(warm) {
        for s in 0..8 {
            let _ = pool.push(s, frame);
        }
    }
    let mut next_session = 0usize;
    c.bench_function("pool_push_frame (8 sessions)", |b| {
        b.iter(|| {
            next_session = (next_session + 1) % 8;
            black_box(pool.push(next_session, black_box(&frame)))
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(40);
    targets = bench_inference
}
criterion_main!(benches);
