//! Criterion bench for the kernel layer: scalar tiled and SIMD GEMM
//! backends (`nn::kernels`) vs the naive reference, on the pipeline's
//! **real** shapes.
//!
//! The shapes below are exactly what the fast-profile monitor multiplies
//! per frame / per training step:
//!
//! * `lstm_gate` — stage-1 LSTM input projection: `(15, 38) · (38, 192)`
//!   (gesture window × ALL features, into 4·48 fused gates).
//! * `lstm_gate_batch8` — the same projection micro-batched over 8 sessions
//!   by the sharded serving tick: `(120, 38) · (38, 192)`.
//! * `im2col` — stage-2 conv as a patch-matrix product:
//!   `(5, 78) · (78, 16)` (error window × kernel·CRG channels).
//! * `conv_dw` — conv weight gradient `AᵀB`: `(5, 78)ᵀ · (5, 16)`.
//! * `lstm_dx` — LSTM input gradient `ABᵀ`: `(15, 192) · (38, 192)ᵀ`.
//!
//! Every backend's result is asserted bit-equal to its naive twin before
//! timing, so the bench doubles as an end-to-end smoke of the
//! accumulation-order contract. Besides time-per-iter, each line reports
//! MFLOP/s (at `2·m·k·n` flops per product) so speedups are comparable
//! across shapes, and a scalar-vs-SIMD summary is written to
//! `BENCH_gemm.json` at the repo root.

use criterion::{black_box, criterion_group, criterion_main, BenchStats, Criterion};
use nn::kernels::{
    gemm_ab_with, gemm_abt_with, gemm_atb_with, naive_ab, naive_abt, naive_atb, simd_isa, GemmIsa,
    GemmScratch,
};

/// `zero_every = 0` → fully dense (normalized kinematic windows, weights);
/// otherwise ~1/`zero_every` exact zeros (post-ReLU activations, im2col
/// padding).
fn fill(len: usize, seed: u64, zero_every: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if zero_every > 0 && state.is_multiple_of(zero_every) {
                0.0
            } else {
                ((state >> 33) as i32 as f32) / (1u32 << 30) as f32
            }
        })
        .collect()
}

#[derive(Clone, Copy)]
enum Variant {
    Ab,
    Abt,
    Atb,
}

/// One shape's scalar-vs-SIMD outcome, for the JSON summary.
struct ShapeResult {
    name: &'static str,
    dims: (usize, usize, usize),
    flops: u64,
    naive: BenchStats,
    scalar: BenchStats,
    simd: Option<BenchStats>,
}

#[allow(clippy::too_many_arguments)] // one line per shape parameter keeps call sites legible
fn bench_shape(
    c: &mut Criterion,
    name: &'static str,
    dims_label: &str,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
    a_zero_every: u64,
) -> ShapeResult {
    let (a_len, b_len) = match variant {
        Variant::Ab => (m * k, k * n),
        Variant::Abt => (m * k, n * k),
        Variant::Atb => (k * m, k * n),
    };
    let a = fill(a_len, 11 + m as u64, a_zero_every);
    let b = fill(b_len, 23 + n as u64, 0);
    let mut out = vec![0.0f32; m * n];
    let mut reference = vec![0.0f32; m * n];
    let mut scratch = GemmScratch::default();
    let flops = 2 * (m * k * n) as u64;

    let run = |isa: GemmIsa, out: &mut [f32], scratch: &mut GemmScratch, a: &[f32], b: &[f32]| {
        match variant {
            Variant::Ab => gemm_ab_with(isa, m, k, n, a, b, out, scratch),
            Variant::Abt => gemm_abt_with(isa, m, k, n, a, b, out, scratch),
            Variant::Atb => gemm_atb_with(isa, m, k, n, a, b, out, scratch),
        }
    };

    // Smoke: every available backend must be bit-equal to naive on this
    // shape before anything is timed.
    match variant {
        Variant::Ab => naive_ab(m, k, n, &a, &b, &mut reference),
        Variant::Abt => naive_abt(m, k, n, &a, &b, &mut reference),
        Variant::Atb => naive_atb(m, k, n, &a, &b, &mut reference),
    }
    let mut isas = vec![GemmIsa::Scalar];
    isas.extend(simd_isa());
    for &isa in &isas {
        run(isa, &mut out, &mut scratch, &a, &b);
        for (i, (g, w)) in out.iter().zip(reference.iter()).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "{name}: {} != naive at element {i}", isa.name());
        }
    }

    let naive = c.bench_stats(&format!("{name}_naive {dims_label}"), Some(flops), |bch| {
        bch.iter(|| match variant {
            Variant::Ab => naive_ab(m, k, n, black_box(&a), black_box(&b), &mut out),
            Variant::Abt => naive_abt(m, k, n, black_box(&a), black_box(&b), &mut out),
            Variant::Atb => naive_atb(m, k, n, black_box(&a), black_box(&b), &mut out),
        })
    });
    let scalar = c.bench_stats(&format!("{name}_scalar {dims_label}"), Some(flops), |bch| {
        bch.iter(|| run(GemmIsa::Scalar, &mut out, &mut scratch, black_box(&a), black_box(&b)))
    });
    let simd = simd_isa().map(|isa| {
        c.bench_stats(&format!("{name}_{} {dims_label}", isa.name()), Some(flops), |bch| {
            bch.iter(|| run(isa, &mut out, &mut scratch, black_box(&a), black_box(&b)))
        })
    });

    ShapeResult { name, dims: (m, k, n), flops, naive, scalar, simd }
}

fn bench_gemm(c: &mut Criterion) {
    println!(
        "gemm kernels: {} core(s) | backend: {} | detected simd: {}",
        std::thread::available_parallelism().map_or(1, usize::from),
        nn::kernels::gemm_backend_label(),
        simd_isa().map_or("none", GemmIsa::name),
    );

    let results = [
        // Stage-1 LSTM input projection (the dominant per-frame matmul).
        bench_shape(c, "lstm_gate", "(15x38 * 38x192)", Variant::Ab, 15, 38, 192, 0),
        // The same, micro-batched over 8 sessions by a serving shard.
        bench_shape(c, "lstm_gate_batch8", "(120x38 * 38x192)", Variant::Ab, 120, 38, 192, 0),
        // Stage-2 im2col convolution product.
        bench_shape(c, "im2col", "(5x78 * 78x16)", Variant::Ab, 5, 78, 16, 8),
        // Training-side contractions.
        bench_shape(c, "conv_dw", "(78x5^T * 5x16)", Variant::Atb, 78, 5, 16, 8),
        bench_shape(c, "lstm_dw", "(38x15^T * 15x192)", Variant::Atb, 38, 15, 192, 0),
        bench_shape(c, "lstm_dx", "(15x192 * (38x192)^T)", Variant::Abt, 15, 192, 38, 0),
    ];

    write_summary(&results);
}

/// Hand-formatted JSON summary (the bench crate deliberately has no serde
/// dependency) written to the repo root, newest run wins.
fn write_summary(results: &[ShapeResult]) {
    let simd_name = simd_isa().map_or("none".to_string(), |i| i.name().to_string());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"gemm\",\n  \"simd_isa\": \"{simd_name}\",\n  \"flops_model\": \"2*m*k*n\",\n  \"shapes\": [\n"
    ));
    for (idx, r) in results.iter().enumerate() {
        let (m, k, n) = r.dims;
        let speedup =
            r.simd.map(|s| if s.median_ns > 0.0 { r.scalar.median_ns / s.median_ns } else { 0.0 });
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"m\": {m}, \"k\": {k}, \"n\": {n},\n     \"naive_ns\": {:.1}, \"scalar_ns\": {:.1}, \"simd_ns\": {},\n     \"scalar_mflops\": {:.1}, \"simd_mflops\": {}, \"simd_speedup_vs_scalar\": {}}}{}\n",
            r.name,
            r.naive.median_ns,
            r.scalar.median_ns,
            r.simd.map_or("null".to_string(), |s| format!("{:.1}", s.median_ns)),
            r.scalar.mflops(r.flops),
            r.simd.map_or("null".to_string(), |s| format!("{:.1}", s.mflops(r.flops))),
            speedup.map_or("null".to_string(), |s| format!("{s:.2}")),
            if idx + 1 < results.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_gemm.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote scalar-vs-simd summary to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gemm
}
criterion_main!(benches);
