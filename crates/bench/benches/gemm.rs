//! Criterion bench for the kernel layer: tiled GEMM (`nn::kernels`) vs the
//! naive reference, on the pipeline's **real** shapes.
//!
//! The shapes below are exactly what the fast-profile monitor multiplies
//! per frame / per training step:
//!
//! * `lstm_gate` — stage-1 LSTM input projection: `(15, 38) · (38, 192)`
//!   (gesture window × ALL features, into 4·48 fused gates).
//! * `lstm_gate_batch8` — the same projection micro-batched over 8 sessions
//!   by the sharded serving tick: `(120, 38) · (38, 192)`.
//! * `im2col` — stage-2 conv as a patch-matrix product:
//!   `(5, 78) · (78, 16)` (error window × kernel·CRG channels).
//! * `conv_dw` — conv weight gradient `AᵀB`: `(5, 78)ᵀ · (5, 16)`.
//! * `lstm_dx` — LSTM input gradient `ABᵀ`: `(15, 192) · (38, 192)ᵀ`.
//!
//! Every tiled result is asserted bit-equal to its naive twin before
//! timing, so the bench doubles as an end-to-end smoke of the
//! accumulation-order contract.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use nn::kernels::{gemm_ab, gemm_abt, gemm_atb, naive_ab, naive_abt, naive_atb, GemmScratch};

/// `zero_every = 0` → fully dense (normalized kinematic windows, weights);
/// otherwise ~1/`zero_every` exact zeros (post-ReLU activations, im2col
/// padding).
fn fill(len: usize, seed: u64, zero_every: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if zero_every > 0 && state.is_multiple_of(zero_every) {
                0.0
            } else {
                ((state >> 33) as i32 as f32) / (1u32 << 30) as f32
            }
        })
        .collect()
}

enum Variant {
    Ab,
    Abt,
    Atb,
}

fn bench_pair(
    c: &mut Criterion,
    name: &str,
    variant: Variant,
    m: usize,
    k: usize,
    n: usize,
    a_zero_every: u64,
) {
    let (a_len, b_len) = match variant {
        Variant::Ab => (m * k, k * n),
        Variant::Abt => (m * k, n * k),
        Variant::Atb => (k * m, k * n),
    };
    let a = fill(a_len, 11 + m as u64, a_zero_every);
    let b = fill(b_len, 23 + n as u64, 0);
    let mut out = vec![0.0f32; m * n];
    let mut reference = vec![0.0f32; m * n];
    let mut scratch = GemmScratch::default();

    // Smoke: tiled must be bit-equal to naive on this shape.
    match variant {
        Variant::Ab => {
            naive_ab(m, k, n, &a, &b, &mut reference);
            gemm_ab(m, k, n, &a, &b, &mut out, &mut scratch);
        }
        Variant::Abt => {
            naive_abt(m, k, n, &a, &b, &mut reference);
            gemm_abt(m, k, n, &a, &b, &mut out, &mut scratch);
        }
        Variant::Atb => {
            naive_atb(m, k, n, &a, &b, &mut reference);
            gemm_atb(m, k, n, &a, &b, &mut out, &mut scratch);
        }
    }
    for (i, (g, w)) in out.iter().zip(reference.iter()).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{name}: tiled != naive at element {i}");
    }

    c.bench_function(&format!("{name}_naive"), |bch| {
        bch.iter(|| match variant {
            Variant::Ab => naive_ab(m, k, n, black_box(&a), black_box(&b), &mut out),
            Variant::Abt => naive_abt(m, k, n, black_box(&a), black_box(&b), &mut out),
            Variant::Atb => naive_atb(m, k, n, black_box(&a), black_box(&b), &mut out),
        })
    });
    c.bench_function(&format!("{name}_tiled"), |bch| {
        bch.iter(|| match variant {
            Variant::Ab => gemm_ab(m, k, n, black_box(&a), black_box(&b), &mut out, &mut scratch),
            Variant::Abt => gemm_abt(m, k, n, black_box(&a), black_box(&b), &mut out, &mut scratch),
            Variant::Atb => gemm_atb(m, k, n, black_box(&a), black_box(&b), &mut out, &mut scratch),
        })
    });
}

fn bench_gemm(c: &mut Criterion) {
    // Stage-1 LSTM input projection (the dominant per-frame matmul).
    bench_pair(c, "lstm_gate (15x38 * 38x192)", Variant::Ab, 15, 38, 192, 0);
    // The same, micro-batched over 8 sessions by a serving shard.
    bench_pair(c, "lstm_gate_batch8 (120x38 * 38x192)", Variant::Ab, 120, 38, 192, 0);
    // Stage-2 im2col convolution product.
    bench_pair(c, "im2col (5x78 * 78x16)", Variant::Ab, 5, 78, 16, 8);
    // Training-side contractions.
    bench_pair(c, "conv_dw (78x5^T * 5x16)", Variant::Atb, 78, 5, 16, 8);
    bench_pair(c, "lstm_dw (38x15^T * 15x192)", Variant::Atb, 38, 15, 192, 0);
    bench_pair(c, "lstm_dx (15x192 * (38x192)^T)", Variant::Abt, 15, 192, 38, 0);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_gemm
}
criterion_main!(benches);
