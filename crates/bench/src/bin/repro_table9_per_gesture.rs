//! Table IX — effect of the pipeline components on per-gesture accuracy and
//! timeliness: reaction time and F1 with perfect boundaries vs. the full
//! gesture-specific pipeline, plus gesture detection accuracy and jitter.

use bench::{
    block_transfer_dataset, block_transfer_monitor_cfg, header, jigsaws_dataset,
    suturing_monitor_cfg, Scale,
};
use context_monitor::{
    per_gesture_report, ContextMode, GestureRow, MonitorConfig, TrainedPipeline,
};
use gestures::Task;
use kinematics::Dataset;

fn main() {
    let scale = Scale::from_env();

    header("Table IX — per-gesture breakdown (Suturing, dVRK)");
    run_task(&jigsaws_dataset(Task::Suturing, scale), &suturing_monitor_cfg(scale));

    header("Table IX — per-gesture breakdown (Block Transfer, Raven II)");
    run_task(&block_transfer_dataset(scale), &block_transfer_monitor_cfg(scale));

    println!(
        "\npaper's observations to check (§VI):\n\
         * perfect boundaries give better (less negative) reaction times and F1 than the\n\
           gesture-specific pipeline for every gesture;\n\
         * gestures with high erroneous-gesture F1 (G4, G6 in Suturing) also have the best\n\
           reaction times;\n\
         * gestures with no common errors (e.g. G10) have no reaction times at all."
    );
}

fn run_task(ds: &Dataset, cfg: &MonitorConfig) {
    let folds = ds.loso_folds();
    let fold = &folds[0];
    let pipeline = TrainedPipeline::train(ds, &fold.train, cfg);

    let perfect = per_gesture_report(&pipeline, ds, &fold.test, ContextMode::Perfect);
    let predicted = per_gesture_report(&pipeline, ds, &fold.test, ContextMode::Predicted);

    println!(
        "{:<5} | {:>11} {:>8} | {:>8} {:>11} {:>11} {:>8} | {:>6}",
        "Gest", "react(ms)", "F1err", "detect%", "jitter(ms)", "jitterE(ms)", "react", "F1err"
    );
    println!("{:<5} | {:^21} | {:^42} |", "", "perfect boundaries", "gesture-specific pipeline");
    for p in &perfect {
        let q = predicted.iter().find(|r| r.gesture == p.gesture);
        let q = match q {
            Some(q) => q,
            None => continue,
        };
        println!(
            "G{:<4} | {:>11} {:>8} | {:>7.1}% {:>11} {:>11} {:>8} | {:>6}",
            p.gesture + 1,
            fmt_ms(p.avg_reaction_ms),
            fmt_f1(p.f1_err, p.events),
            100.0 * q.detection_accuracy,
            fmt_ms(q.avg_jitter_ms),
            fmt_ms(q.avg_jitter_err_ms),
            fmt_ms(q.avg_reaction_ms),
            fmt_f1(q.f1_err, q.events)
        );
    }
}

fn fmt_ms(v: f32) -> String {
    if v.is_nan() {
        "N/A".to_string()
    } else {
        format!("{v:+.0}")
    }
}

fn fmt_f1(v: f32, events: usize) -> String {
    if events == 0 {
        "N/A".to_string()
    } else {
        format!("{v:.2}")
    }
}

/// Kept for doc purposes: the row type printed above.
#[allow(dead_code)]
fn _row_type(_: GestureRow) {}
