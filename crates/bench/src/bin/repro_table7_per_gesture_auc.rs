//! Table VII — performance of the per-gesture erroneous-gesture classifiers:
//! train/test sizes, error rates, and AUC per gesture class, for Suturing
//! (top block) and Block Transfer (bottom block).

use bench::{
    block_transfer_dataset, block_transfer_monitor_cfg, header, jigsaws_dataset,
    suturing_monitor_cfg, Scale,
};
use context_monitor::{MonitorConfig, TrainStages, TrainedPipeline};
use eval::auc;
use gestures::Task;
use kinematics::{windows_with_positions, Dataset};
use nn::predict_proba;

fn main() {
    let scale = Scale::from_env();

    header("Table VII — per-gesture erroneous-gesture classifiers");
    println!(
        "{:<6} {:>11} {:>8} {:>10} {:>8} {:>6}",
        "Gest", "train win", "%err", "test win", "%err", "AUC"
    );

    println!("-- Suturing (dVRK) --");
    run_task(&jigsaws_dataset(Task::Suturing, scale), &suturing_monitor_cfg(scale));

    println!("-- Block Transfer (Raven II) --");
    run_task(&block_transfer_dataset(scale), &block_transfer_monitor_cfg(scale));

    println!(
        "\npaper (Table VII, Suturing): best AUCs on the frequent error-heavy gestures\n\
         G4 (0.93) and G6 (0.93); weakest on sparse classes (G2 0.50, G1 0.60, G5 0.61).\n\
         Block Transfer: G6 0.75, G5 0.72, G11 0.66.\n\
         shape to hold: AUC tracks error frequency — frequent erroneous gestures are\n\
         detected best; sparse ones are at or near chance."
    );
}

fn run_task(ds: &Dataset, cfg: &MonitorConfig) {
    let folds = ds.loso_folds();
    let fold = &folds[0];
    let (pipeline, stats) =
        TrainedPipeline::train_stages(ds, &fold.train, cfg, TrainStages::ERRORS_ONLY);

    // Harvest test windows grouped by ground-truth gesture.
    let mut test_windows: std::collections::BTreeMap<usize, Vec<(nn::Mat, bool)>> =
        Default::default();
    for &i in &fold.test {
        let demo = &ds.demos[i];
        let feats = pipeline.normalizer.apply(&demo.feature_matrix(&cfg.features));
        let g_idx = demo.gesture_indices();
        for (w, pos) in windows_with_positions(&feats, cfg.window) {
            test_windows.entry(g_idx[pos]).or_default().push((w, demo.unsafe_labels[pos]));
        }
    }

    for st in &stats {
        let g = st.gesture;
        let (test_n, test_err, auc_str) = match test_windows.get(&g) {
            Some(wins) => {
                let errs = wins.iter().filter(|(_, u)| *u).count();
                let auc_val = pipeline.error_nets.get(&g).and_then(|net| {
                    let mut scratch = net.make_scratch();
                    let scores: Vec<f32> =
                        wins.iter().map(|(w, _)| predict_proba(net, w, &mut scratch)[1]).collect();
                    let labels: Vec<bool> = wins.iter().map(|(_, u)| *u).collect();
                    auc(&scores, &labels)
                });
                (
                    wins.len(),
                    100.0 * errs as f32 / wins.len().max(1) as f32,
                    auc_val.map_or("N/A".to_string(), |a| format!("{a:.2}")),
                )
            }
            None => (0, 0.0, "N/A".to_string()),
        };
        println!(
            "G{:<5} {:>11} {:>7.0}% {:>10} {:>7.0}% {:>6}",
            g + 1,
            st.windows,
            100.0 * st.error_rate,
            test_n,
            test_err,
            auc_str
        );
    }
}
