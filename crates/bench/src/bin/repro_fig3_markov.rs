//! Fig. 3 — Markov chains for Suturing and Block Transfer.
//!
//! The paper derived Fig. 3a from the JIGSAWS demonstrations. We print the
//! reference chains, then re-estimate a chain from generated demonstrations
//! and report the estimation error, demonstrating that the chain structure
//! is recoverable from data exactly as the paper recovered it.

use bench::{header, jigsaws_dataset, Scale};
use gestures::{MarkovChain, Task};

fn main() {
    let scale = Scale::from_env();

    for task in [Task::Suturing, Task::BlockTransfer] {
        header(&format!("Fig. 3 — {task} reference chain"));
        let reference = task.reference_chain();
        print!("{}", reference.render());

        let ds = jigsaws_dataset(task, scale);
        let sequences: Vec<_> = ds.demos.iter().map(|d| d.gesture_sequence()).collect();
        let estimated = MarkovChain::estimate(&sequences);
        let l1 = reference.l1_distance(&estimated);
        println!(
            "\nchain re-estimated from {} generated demonstrations; mean per-row L1 distance to reference: {l1:.3}",
            ds.len()
        );
        header(&format!("Fig. 3 — {task} estimated chain"));
        print!("{}", estimated.render());

        if task == Task::BlockTransfer {
            println!(
                "\nBlock Transfer check: every demonstration follows G2->G12->G6->G5->G11 \
                 (paper: transition probabilities of 1)"
            );
            let all_same = sequences.iter().all(|s| s == &sequences[0]);
            println!("all demonstrations identical sequence: {all_same}");
        }
    }
}
