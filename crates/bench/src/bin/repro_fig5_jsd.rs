//! Fig. 5 — pairwise Jensen–Shannon divergence between erroneous-gesture
//! distributions (Equation 1).
//!
//! Following §III: the kinematics samples of each erroneous gesture class
//! are modeled with a Gaussian-kernel density estimate and compared with
//! JS-divergence. The paper's observation: commonly occurring error-heavy
//! gestures (G2, G3, G4, G6) show high pairwise divergence — evidence that
//! errors are context-specific; sparse classes yield no meaningful
//! distribution.

use bench::{header, jigsaws_dataset, Scale};
use eval::js_divergence_kde;
use gestures::Task;
use kinematics::FeatureSet;

/// Minimum erroneous frames for a meaningful KDE (the paper notes small
/// sample sizes prevented estimates for some classes).
const MIN_SAMPLES: usize = 60;

fn main() {
    let scale = Scale::from_env();
    let ds = jigsaws_dataset(Task::Suturing, scale);

    // Collect per-gesture erroneous kinematics samples. KDE in 38-D is
    // hopeless at these sample sizes (as it was for the paper); use the
    // Cartesian + grasper subset of the dominant arm.
    let features = FeatureSet::CG;
    let mut per_gesture: std::collections::BTreeMap<usize, Vec<Vec<f32>>> = Default::default();
    for d in &ds.demos {
        for (t, frame) in d.frames.iter().enumerate() {
            if d.unsafe_labels[t] {
                per_gesture
                    .entry(d.gestures[t].index())
                    .or_default()
                    .push(frame.to_feature_vec(&features));
            }
        }
    }

    header("Fig. 5 — pairwise JS-divergence between erroneous gesture distributions");
    let classes: Vec<usize> =
        per_gesture.iter().filter(|(_, v)| v.len() >= MIN_SAMPLES).map(|(&g, _)| g).collect();
    let skipped: Vec<String> = per_gesture
        .iter()
        .filter(|(_, v)| v.len() < MIN_SAMPLES)
        .map(|(&g, v)| format!("G{} ({} samples)", g + 1, v.len()))
        .collect();
    if !skipped.is_empty() {
        println!("skipped (too few samples for a meaningful distribution): {}", skipped.join(", "));
    }

    print!("{:>6}", "");
    for &g in &classes {
        print!("{:>8}", format!("EG{}", g + 1));
    }
    println!();
    let mut max_pair = (0.0f32, 0usize, 0usize);
    for &gi in &classes {
        print!("{:>6}", format!("EG{}", gi + 1));
        for &gj in &classes {
            let d = if gi == gj {
                0.0
            } else {
                js_divergence_kde(&per_gesture[&gi], &per_gesture[&gj]).unwrap_or(f32::NAN)
            };
            if d > max_pair.0 {
                max_pair = (d, gi, gj);
            }
            print!("{d:>8.3}");
        }
        println!();
    }

    println!(
        "\nmax divergence: EG{} vs EG{} = {:.3} nats (bound ln 2 = {:.3})",
        max_pair.1 + 1,
        max_pair.2 + 1,
        max_pair.0,
        std::f32::consts::LN_2
    );
    println!(
        "paper's qualitative claim to check: high divergence among the frequent error classes \
         (G2, G3, G4, G6) => errors are gesture-specific."
    );
}
