//! Table V — erroneous-gesture classification step for Suturing on the
//! dVRK under different setups (input time-window = 5, stride = 1):
//! {gesture-specific, non-gesture-specific} × {LSTM, Conv} × {All, C,R,G}.
//!
//! As in the paper, this step is evaluated standalone with **perfect
//! gesture boundaries**; metrics are the micro-averaged TPR/TNR/PPV/NPV.

use bench::{folds_to_run, header, jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::{ContextMode, ErrorModelKind, MonitorConfig, TrainStages, TrainedPipeline};
use eval::BinaryCounts;
use gestures::Task;
use kinematics::{Dataset, FeatureSet};

struct Setup {
    label: &'static str,
    gesture_specific: bool,
    model: ErrorModelKind,
    features: FeatureSet,
}

fn main() {
    let scale = Scale::from_env();
    let ds = jigsaws_dataset(Task::Suturing, scale);

    let lstm = ErrorModelKind::Lstm { hidden: 24, dense: 16 };
    let conv = ErrorModelKind::Conv { c1: 24, c2: 16, dense: 16 };
    let setups = [
        Setup {
            label: "gesture-specific  LSTM  All  ",
            gesture_specific: true,
            model: lstm,
            features: FeatureSet::ALL,
        },
        Setup {
            label: "gesture-specific  LSTM  C,R,G",
            gesture_specific: true,
            model: lstm,
            features: FeatureSet::CRG,
        },
        Setup {
            label: "gesture-specific  Conv  C,R,G",
            gesture_specific: true,
            model: conv,
            features: FeatureSet::CRG,
        },
        Setup {
            label: "gesture-specific  Conv  All  ",
            gesture_specific: true,
            model: conv,
            features: FeatureSet::ALL,
        },
        Setup {
            label: "non-gesture-spec. LSTM  All  ",
            gesture_specific: false,
            model: lstm,
            features: FeatureSet::ALL,
        },
    ];

    header("Table V — erroneous gesture classification step, Suturing (window=5, stride=1)");
    println!("{:<32} {:>6} {:>6} {:>6} {:>6}", "Setup", "TPR", "TNR", "PPV", "NPV");
    for s in &setups {
        let counts = run_setup(&ds, s, scale);
        println!(
            "{:<32} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            s.label,
            counts.tpr(),
            counts.tnr(),
            counts.ppv(),
            counts.npv()
        );
    }
    println!(
        "\npaper (Table V): gesture-specific rows ~0.75-0.76 TPR / 0.72-0.73 TNR; the\n\
         non-gesture-specific row is consistently lower (0.73 TPR / 0.71 TNR).\n\
         shape to hold: context-specific >= non-context-specific on TPR+TNR."
    );
}

fn run_setup(ds: &Dataset, s: &Setup, scale: Scale) -> BinaryCounts {
    let mut cfg: MonitorConfig = suturing_monitor_cfg(scale);
    cfg.features = s.features;
    cfg.error_model = s.model;

    let folds = ds.loso_folds();
    let n_folds = folds_to_run(scale, folds.len());
    let mut counts = BinaryCounts::default();
    for fold in folds.iter().take(n_folds) {
        let (pipeline, _) =
            TrainedPipeline::train_stages(ds, &fold.train, &cfg, TrainStages::ERRORS_ONLY);
        let mode = if s.gesture_specific { ContextMode::Perfect } else { ContextMode::NoContext };
        for &i in &fold.test {
            let demo = &ds.demos[i];
            let run = pipeline.run_demo(demo, mode);
            counts.merge(&BinaryCounts::from_predictions(&run.unsafe_pred, &demo.unsafe_labels));
        }
    }
    counts
}
