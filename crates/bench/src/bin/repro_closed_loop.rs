//! Closed-loop safety reactor — the paper's headline claim, acted on.
//!
//! The paper reports that the context-aware monitor detects unsafe events
//! with enough time margin to stop the robot (mean reaction time 1.69 s
//! ahead of the unsafe event on Block Transfer, Table VIII). This binary
//! closes the loop the paper argues for: every Table III injection is run
//! **twice** with identical seeds — unmonitored, and with a
//! `reactor::SafetyReactor` gating the command stream — and the twin runs
//! yield prevention rate, false-stop rate, and the reaction-time-margin
//! distribution per mitigation policy.
//!
//! `--smoke` runs a small fixed-seed grid twice and asserts (a) the report
//! is bit-identical across invocations and (b) the prevention rate is
//! strictly above the unmonitored baseline (which prevents nothing by
//! construction). CI runs this on every PR.

use bench::{block_transfer_dataset, block_transfer_monitor_cfg, compare, header, Scale};
use context_monitor::TrainedPipeline;
use faults::{run_closed_loop_campaign, CampaignConfig, ClosedLoopConfig};
use raven_sim::SimConfig;
use reactor::{MitigationPolicy, ReactorConfig};
use std::sync::Arc;

fn train_pipeline(scale: Scale) -> Arc<TrainedPipeline> {
    let ds = block_transfer_dataset(scale);
    let cfg = block_transfer_monitor_cfg(scale);
    let idx: Vec<usize> = (0..ds.len()).collect();
    Arc::new(TrainedPipeline::train(&ds, &idx, &cfg))
}

fn campaign(sim: SimConfig, scale: f32, policy: MitigationPolicy) -> ClosedLoopConfig {
    ClosedLoopConfig {
        campaign: CampaignConfig { sim, seed: bench::SEED, scale, threads: 8 },
        reactor: ReactorConfig { policy, ..ReactorConfig::default() },
    }
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let scale = Scale::from_env();
    let (sim, grid_scale, pause) = match scale {
        // The campaign simulates at the rate the pipeline was trained on.
        Scale::Fast => (SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 }, 0.25, 25),
        Scale::Full => (SimConfig::default(), 1.0, 50),
    };

    header("training the Block Transfer monitor");
    let pipeline = train_pipeline(scale);
    println!(
        "trained on {} demos ({} dedicated gesture classifiers)",
        block_transfer_dataset(scale).len(),
        pipeline.dedicated_gestures().len()
    );

    let mut stop_and_hold = None;
    for policy in [
        MitigationPolicy::LogOnly,
        MitigationPolicy::StopAndHold,
        MitigationPolicy::PauseTicks(pause),
    ] {
        header(&format!("closed-loop campaign — policy {policy}"));
        let report = run_closed_loop_campaign(&campaign(sim, grid_scale, policy), &pipeline)
            .expect("default reactor configs are valid");
        print!("{}", report.render());
        if policy == MitigationPolicy::StopAndHold {
            stop_and_hold = Some(report);
        }
    }

    // The default threshold (0.5, debounce 2) is the safety-first operating
    // point: maximal prevention at the cost of stopping on benign faults.
    // Raising the bar trades prevention for precision — the policy
    // auto-tuning follow-on in ROADMAP.md closes this knob automatically.
    header("high-precision operating point (threshold 0.8, debounce 3)");
    let mut precise = campaign(sim, grid_scale, MitigationPolicy::StopAndHold);
    precise.reactor.threshold = 0.8;
    precise.reactor.debounce = 3;
    let precise_report =
        run_closed_loop_campaign(&precise, &pipeline).expect("precision operating point is valid");
    print!("{}", precise_report.summary().render());

    header("paper vs measured (reaction-time margin, Table VIII)");
    let s = stop_and_hold.expect("StopAndHold campaign ran").summary();
    compare(
        "BlockTransfer mean reaction ahead of event",
        "1693 ms",
        &format!("{:+.0} ms (first alert -> counterfactual drop)", eval::mean(&s.margins_ms)),
    );
    compare(
        "early detection",
        "97.9% of events",
        &format!("{:.1}% of margins positive", 100.0 * s.early_fraction()),
    );
    compare(
        "prevention rate (not measurable open-loop)",
        "-",
        &format!("{:.1}% of baseline block drops", 100.0 * s.prevention_rate()),
    );
}

/// Small fixed-seed closed-loop campaign, run twice: the CI gate for the
/// determinism and prevention acceptance criteria.
fn smoke() {
    header("closed-loop smoke (small grid, fixed seeds)");
    let sim = SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 };
    let pipeline = train_pipeline(Scale::Fast);
    let cfg = campaign(sim, 0.05, MitigationPolicy::StopAndHold);

    let report = run_closed_loop_campaign(&cfg, &pipeline).expect("smoke config is valid");
    let again = run_closed_loop_campaign(&cfg, &pipeline).expect("smoke config is valid");
    assert_eq!(report, again, "closed-loop campaign must be deterministic across invocations");

    let s = report.summary();
    print!("{}", report.render());
    assert!(s.baseline_unsafe > 0, "smoke grid produced no baseline unsafe events");
    assert!(
        s.prevented > 0,
        "prevention rate must be strictly above the unmonitored baseline (0%)"
    );
    println!(
        "smoke OK: deterministic, prevented {}/{} ({}% > unmonitored 0%)",
        s.prevented,
        s.baseline_unsafe,
        (100.0 * s.prevention_rate()).round()
    );
}
