//! Table VIII — overall safety-monitoring pipeline: AUC, F1, reaction time,
//! % early detection, and compute time for the three setups
//! {gesture-specific with perfect boundaries, gesture-specific with the
//! gesture classifier, non-gesture-specific} on Suturing and Block Transfer.

use bench::{
    block_transfer_dataset, block_transfer_monitor_cfg, compare, folds_to_run, header,
    jigsaws_dataset, suturing_monitor_cfg, Scale,
};
use context_monitor::{
    evaluate_pipeline, ContextMode, MonitorConfig, PipelineEval, TrainedPipeline,
};
use gestures::Task;
use kinematics::Dataset;

fn main() {
    let scale = Scale::from_env();

    header("Table VIII — overall pipeline (Suturing, dVRK)");
    let suturing = jigsaws_dataset(Task::Suturing, scale);
    let s_rows = run_task(&suturing, &suturing_monitor_cfg(scale), scale);

    header("Table VIII — overall pipeline (Block Transfer, Raven II)");
    let bt = block_transfer_dataset(scale);
    let b_rows = run_task(&bt, &block_transfer_monitor_cfg(scale), scale);

    header("paper vs measured");
    let paper = [
        ("Suturing perfect-boundaries AUC/F1/react", "0.83 / 0.79 / +53 ms"),
        ("Suturing gesture-specific  AUC/F1/react", "0.81 / 0.76 / -57 ms"),
        ("Suturing non-specific      AUC/F1/react", "0.71 / 0.72 / +221 ms"),
    ];
    for ((label, p), row) in paper.iter().zip(s_rows.iter()) {
        compare(
            label,
            p,
            &format!(
                "{:.2} / {:.2} / {:+.0} ms",
                row.auc_summary().mean,
                row.f1_summary().mean,
                row.reaction_summary().mean
            ),
        );
    }
    let paper_bt = [
        ("BlockTransfer perfect-boundaries AUC/F1", "(not reported)"),
        ("BlockTransfer gesture-specific AUC/F1/react", "0.86 / 0.88 / -1693 ms"),
        ("BlockTransfer non-specific     AUC/F1/react", "0.74 / 0.73 / -457 ms"),
    ];
    for ((label, p), row) in paper_bt.iter().zip(b_rows.iter()) {
        compare(
            label,
            p,
            &format!(
                "{:.2} / {:.2} / {:+.0} ms",
                row.auc_summary().mean,
                row.f1_summary().mean,
                row.reaction_summary().mean
            ),
        );
    }
    println!(
        "\nshape to hold (§VI): context-specific beats non-context-specific on AUC/F1\n\
         (paper: +14.1% and +16.2% AUC), perfect boundaries beat predicted ones, and\n\
         per-window compute time stays in the low-millisecond range."
    );
}

fn run_task(ds: &Dataset, cfg: &MonitorConfig, scale: Scale) -> Vec<PipelineEval> {
    let folds = ds.loso_folds();
    let n_folds = folds_to_run(scale, folds.len());

    // Evaluate each mode pooled over folds.
    let mut evals: Vec<PipelineEval> = Vec::new();
    for mode in [ContextMode::Perfect, ContextMode::Predicted, ContextMode::NoContext] {
        let mut pooled: Option<PipelineEval> = None;
        for fold in folds.iter().take(n_folds) {
            let pipeline = TrainedPipeline::train(ds, &fold.train, cfg);
            let eval = evaluate_pipeline(&pipeline, ds, &fold.test, mode);
            pooled = Some(match pooled.take() {
                None => eval,
                Some(mut acc) => {
                    acc.demos.extend(eval.demos);
                    acc
                }
            });
        }
        let eval = pooled.expect("at least one fold");
        println!("{}", eval.table8_row(&format!("{mode}")));
        evals.push(eval);
    }
    evals
}
