//! Quantized-tier parity gate: the acceptance check for `Precision::Int8`.
//!
//! Trains the Suturing monitor on a LOSO split, builds the calibrated int8
//! twin from the training demos only, and replays the **held-out** demos
//! through both tiers. The gate then asserts two different things:
//!
//! 1. **Accuracy parity (f32 ↔ int8, bounded, not bit-equal).** Per-frame
//!    gesture agreement, unsafe-score MAE, alert flip rate, and the mean
//!    held-out AUC delta must all stay inside documented tolerances. Int8
//!    is a different numeric program than f32 — bit-equality across tiers
//!    is impossible and not claimed.
//! 2. **Determinism within the int8 tier (bit-exact).** The same demo
//!    replayed twice, and the same sessions served through the sharded pool
//!    at 1 vs 4 workers (different micro-batch shapes), must produce
//!    bit-identical int8 decisions. The gate prints an order-independent
//!    digest of every int8 output; CI runs this binary under
//!    `GEMM_BACKEND=scalar` and `GEMM_BACKEND=simd` and diffs the digest
//!    line, which pins cross-backend bit-identity at the pipeline level
//!    (the kernel level is pinned by `nn`'s property tests).
//!
//! ```sh
//! cargo run --release -p bench --bin repro_quant_parity
//! ```

use bench::{header, jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
use context_monitor::{evaluate_run, ContextMode, MonitorRun, Precision, TrainedPipeline};
use gestures::Task;
use kinematics::Dataset;
use std::sync::Arc;

/// Accuracy-parity tolerances, chosen from measured headroom (see
/// DESIGN.md "Quantized tier"): the fast-scale gate typically measures
/// ≥ 0.99 gesture agreement and < 0.01 score MAE; the bounds below leave
/// room for backend/seed variation while still catching a broken
/// calibration (which degrades all four metrics catastrophically).
const MIN_GESTURE_AGREEMENT: f32 = 0.95;
const MAX_SCORE_MAE: f32 = 0.02;
const MAX_ALERT_FLIP_RATE: f32 = 0.05;
const MAX_AUC_DELTA: f32 = 0.02;

/// FNV-1a over every deterministic bit of a run (gesture, score bits,
/// alert), so two runs digest equal iff they are bit-identical.
fn digest(runs: &[MonitorRun]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut mix = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x100_0000_01b3);
    };
    for run in runs {
        for t in 0..run.unsafe_score.len() {
            for b in (run.gesture_pred[t] as u64).to_le_bytes() {
                mix(b);
            }
            for b in run.unsafe_score[t].to_bits().to_le_bytes() {
                mix(b);
            }
            mix(u8::from(run.unsafe_pred[t]));
        }
    }
    h
}

/// The deterministic bits of one pooled decision: gesture index, raw
/// unsafe-score bits, alert flag.
type Decision = (usize, u32, bool);

/// Streams each test demo as its own session through a sharded int8 pool
/// and returns the deterministic decision fields per session, frame-ordered.
fn pooled_int8(
    pipeline: &Arc<TrainedPipeline>,
    ds: &Dataset,
    test: &[usize],
    workers: usize,
) -> Vec<Vec<Decision>> {
    let cfg = ServeConfig { workers, threshold: 0.5, precision: Precision::Int8 };
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::clone(pipeline),
        ContextMode::Predicted,
        cfg,
        test.len(),
    );
    let longest = test.iter().map(|&i| ds.demos[i].len()).max().unwrap();
    for t in 0..longest {
        for (s, &i) in test.iter().enumerate() {
            if let Some(frame) = ds.demos[i].frames.get(t) {
                pool.submit(s, frame).expect("Predicted mode");
            }
        }
    }
    let mut outs: Vec<Vec<(usize, Decision)>> = vec![Vec::new(); test.len()];
    for d in pool.flush() {
        if let Some(o) = d.output {
            outs[d.session]
                .push((d.frame, (o.gesture.index(), o.unsafe_probability.to_bits(), o.alert)));
        }
    }
    outs.into_iter().map(|v| v.into_iter().map(|(_, k)| k).collect()).collect()
}

fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

fn main() {
    header("quantized-tier parity gate (Suturing, LOSO fold 0)");
    println!("gemm backend: {}", nn::kernels::gemm_backend_label());

    let ds = jigsaws_dataset(Task::Suturing, Scale::Fast);
    let cfg = suturing_monitor_cfg(Scale::Fast);
    let fold = &ds.loso_folds()[0];
    let mut pipeline = TrainedPipeline::train(&ds, &fold.train, &cfg);
    // Calibration sees training demos only; the parity below is held-out.
    pipeline.quantize(&ds, &fold.train).expect("built-in specs are quantizable");

    let mut agreement = Vec::new();
    let mut maes = Vec::new();
    let mut flips = Vec::new();
    let mut auc_deltas = Vec::new();
    let mut int8_runs = Vec::new();
    let mut f32_ms = Vec::new();
    let mut int8_ms = Vec::new();
    for &i in &fold.test {
        let demo = &ds.demos[i];
        let f = pipeline.run_demo(demo, ContextMode::Predicted);
        let q = pipeline.run_demo_with(demo, ContextMode::Predicted, Precision::Int8);
        let n = f.unsafe_score.len() as f32;
        let agree =
            f.gesture_pred.iter().zip(&q.gesture_pred).filter(|(a, b)| a == b).count() as f32 / n;
        let mae =
            f.unsafe_score.iter().zip(&q.unsafe_score).map(|(a, b)| (a - b).abs()).sum::<f32>() / n;
        let flip =
            f.unsafe_pred.iter().zip(&q.unsafe_pred).filter(|(a, b)| a != b).count() as f32 / n;
        if let (Some(fa), Some(qa)) = (evaluate_run(demo, &f).auc, evaluate_run(demo, &q).auc) {
            auc_deltas.push((fa - qa).abs());
        }
        println!(
            "{:<10} gesture agreement {:.3}  score MAE {:.4}  alert flips {:.3}  \
             compute {:.3} -> {:.3} ms/frame",
            demo.id, agree, mae, flip, f.compute_ms, q.compute_ms
        );
        agreement.push(agree);
        maes.push(mae);
        flips.push(flip);
        f32_ms.push(f.compute_ms);
        int8_ms.push(q.compute_ms);
        int8_runs.push(q);
    }

    let (agree, mae, flip) = (mean(&agreement), mean(&maes), mean(&flips));
    let auc_delta = mean(&auc_deltas);
    println!(
        "held-out means: gesture agreement {agree:.4}, score MAE {mae:.4}, alert flips \
         {flip:.4}, |AUC delta| {auc_delta:.4} ({} demos with AUC)",
        auc_deltas.len()
    );
    println!(
        "per-frame compute: f32 {:.3} ms, int8 {:.3} ms ({:.2}x)",
        mean(&f32_ms),
        mean(&int8_ms),
        mean(&f32_ms) / mean(&int8_ms)
    );
    assert!(agree >= MIN_GESTURE_AGREEMENT, "gesture agreement {agree} < {MIN_GESTURE_AGREEMENT}");
    assert!(mae <= MAX_SCORE_MAE, "unsafe-score MAE {mae} > {MAX_SCORE_MAE}");
    assert!(flip <= MAX_ALERT_FLIP_RATE, "alert flip rate {flip} > {MAX_ALERT_FLIP_RATE}");
    assert!(auc_delta <= MAX_AUC_DELTA, "held-out AUC delta {auc_delta} > {MAX_AUC_DELTA}");

    // Bit-exact determinism inside the tier: replaying is reproducible...
    let replay: Vec<MonitorRun> = fold
        .test
        .iter()
        .map(|&i| pipeline.run_demo_with(&ds.demos[i], ContextMode::Predicted, Precision::Int8))
        .collect();
    let d = digest(&int8_runs);
    assert_eq!(d, digest(&replay), "int8 replay must be bit-identical run to run");

    // ...and the sharded pool's micro-batches agree with batch size 1 at
    // every worker count (different worker counts => different batches).
    let shared = Arc::new(pipeline);
    let one = pooled_int8(&shared, &ds, &fold.test, 1);
    let four = pooled_int8(&shared, &ds, &fold.test, 4);
    assert_eq!(one, four, "int8 pool output must be bit-identical for 1 vs 4 workers");
    let warm: usize = one.iter().map(Vec::len).sum();
    assert!(warm > 0, "pool sessions should warm up");

    // The digest line CI diffs across GEMM_BACKEND=scalar/simd processes.
    println!("int8 output digest: {d:016x} over {} held-out demos", fold.test.len());
    println!("parity gate OK");
}
