//! Table III — fault-injection experiments on the Raven II.
//!
//! Runs the paper's 651-injection grid (scaled down under `REPRO_SCALE=fast`)
//! through the simulator and prints per-cell block-drop / dropoff-failure
//! rates next to the paper's totals. Also cross-checks a sample of outcomes
//! against the vision-based labeling pipeline (§IV-B's orthogonal method).

use bench::{compare, header, Scale};
use faults::{run_campaign, run_injection, sample_spec, table3_grid, CampaignConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use raven_sim::{run_block_transfer, NoFaults, SimConfig};
use vision::{label_trial, reference_trace, VisionConfig};

fn main() {
    let scale = Scale::from_env();
    let (sim, grid_scale) = match scale {
        Scale::Fast => (SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 }, 0.25),
        Scale::Full => (SimConfig::default(), 1.0),
    };

    header("Table III — fault injection campaign");
    let cfg = CampaignConfig { sim, seed: bench::SEED, scale: grid_scale, threads: 8 };
    let report = run_campaign(&cfg);
    print!("{}", report.render());

    header("paper vs measured (rates)");
    compare("total injections", "651", &report.total_injections().to_string());
    compare(
        "block-drop rate",
        "392/651 = 60.2%",
        &format!(
            "{}/{} = {:.1}%",
            report.total_block_drops(),
            report.total_injections(),
            100.0 * report.total_block_drops() as f32 / report.total_injections() as f32
        ),
    );
    compare(
        "dropoff-failure rate",
        "106/651 = 16.3%",
        &format!(
            "{}/{} = {:.1}%",
            report.total_dropoffs(),
            report.total_injections(),
            100.0 * report.total_dropoffs() as f32 / report.total_injections() as f32
        ),
    );

    // Qualitative regime checks from §IV-B.
    let mut regimes = [
        ("low angle / short interval", 0usize, 0usize),
        ("low angle / long interval (dropoffs)", 0, 0),
        ("high angle >= 1.1 rad (block drops)", 0, 0),
    ];
    for c in &report.cells {
        let low = c.cell.grasper.1 <= 0.85;
        let long = c.cell.grasper_interval.1 > 0.8;
        if low && !long {
            regimes[0].1 += c.errors();
            regimes[0].2 += c.injections;
        } else if low && long {
            regimes[1].1 += c.dropoffs;
            regimes[1].2 += c.injections;
        } else if c.cell.grasper.0 >= 1.1 {
            regimes[2].1 += c.block_drops;
            regimes[2].2 += c.injections;
        }
    }
    compare(
        regimes[0].0,
        "0-12.5% errors",
        &format!("{:.1}%", 100.0 * regimes[0].1 as f32 / regimes[0].2.max(1) as f32),
    );
    compare(
        regimes[1].0,
        "93.75-100%",
        &format!("{:.1}%", 100.0 * regimes[1].1 as f32 / regimes[1].2.max(1) as f32),
    );
    compare(
        regimes[2].0,
        "75-100%",
        &format!("{:.1}%", 100.0 * regimes[2].1 as f32 / regimes[2].2.max(1) as f32),
    );

    header("vision cross-check (automated labeling of errors, §IV-B)");
    let vcfg = VisionConfig::default();
    let reference =
        reference_trace(&run_block_transfer(&SimConfig { seed: 7, ..sim }, &mut NoFaults), &vcfg);
    let grid = table3_grid();
    let mut rng = SmallRng::seed_from_u64(bench::SEED ^ 0xCC);
    let mut agree = 0usize;
    let n_check = 24usize;
    for k in 0..n_check {
        let cell = &grid[k % grid.len()];
        let spec = sample_spec(cell, &mut rng);
        let sim_cfg = SimConfig { seed: 1000 + k as u64, ..sim };
        let (trial, _) = run_injection(&sim_cfg, spec);
        let verdict = label_trial(&trial, &reference, &vcfg);
        if verdict.failure == trial.outcome.failure {
            agree += 1;
        }
    }
    println!(
        "vision verdict agrees with simulator ground truth on {agree}/{n_check} sampled injections"
    );
}
