//! Fig. 8 — example timeline for detecting anomalies: ground-truth gestures
//! vs. predicted gestures, the erroneous span, and where the monitor fires,
//! rendered as an ASCII strip chart for one faulty Block Transfer trial.

use bench::{block_transfer_dataset, block_transfer_monitor_cfg, header, Scale};
use context_monitor::{ContextMode, TrainedPipeline};
use eval::segments;
use gestures::Gesture;

fn main() {
    let scale = Scale::from_env();
    let ds = block_transfer_dataset(scale);
    let cfg = block_transfer_monitor_cfg(scale);
    let folds = ds.loso_folds();
    let fold = &folds[0];
    let pipeline = TrainedPipeline::train(&ds, &fold.train, &cfg);

    // Pick a test demo with an annotated error; fall back to the first.
    let demo_idx =
        fold.test.iter().copied().find(|&i| !ds.demos[i].errors.is_empty()).unwrap_or(fold.test[0]);
    let demo = &ds.demos[demo_idx];
    let run = pipeline.run_demo(demo, ContextMode::Predicted);

    header(&format!("Fig. 8 — detection timeline for {}", demo.id));
    let width = 100usize;
    let n = demo.len();
    let at = |t: usize| (t * width / n).min(width - 1);

    println!("Ground truth   {}", gesture_strip(&demo.gesture_indices(), width));
    println!("Predicted      {}", gesture_strip(&run.gesture_pred, width));
    println!("Truth unsafe   {}", bool_strip(&demo.unsafe_labels, width));
    println!("Pred unsafe    {}", bool_strip(&run.unsafe_pred, width));

    let mut marks = vec![' '; width];
    for e in &demo.errors {
        marks[at(e.actual_frame)] = 'X';
    }
    if let Some(first_alert) = run.unsafe_pred.iter().position(|&u| u) {
        let c = &mut marks[at(first_alert)];
        *c = if *c == 'X' { '*' } else { 'D' };
    }
    println!(
        "Events         {}   (X = actual error, D = first detection, * = both)",
        marks.iter().collect::<String>()
    );

    println!("\nlegend (gesture strips):");
    let mut seen: Vec<usize> = demo.gesture_indices();
    seen.sort_unstable();
    seen.dedup();
    for g in seen {
        println!(
            "  {} = {} ({})",
            symbol(g),
            Gesture::from_index(g).map(|x| x.to_string()).unwrap_or_default(),
            Gesture::from_index(g).map(|x| x.description()).unwrap_or_default()
        );
    }

    println!("\nsegment boundaries (ground truth):");
    for seg in segments(&demo.gesture_indices()) {
        println!(
            "  G{:<3} frames {:>5}..{:<5} ({:.2}s..{:.2}s)",
            seg.label + 1,
            seg.start,
            seg.end,
            seg.start as f32 / demo.hz,
            seg.end as f32 / demo.hz
        );
    }
    for e in &demo.errors {
        println!(
            "\nannotated error: {} erroneous over frames {}..{}, actual occurrence at frame {} ({:.2}s)",
            e.gesture, e.span_start, e.span_end, e.actual_frame,
            e.actual_frame as f32 / demo.hz
        );
    }
}

fn symbol(g: usize) -> char {
    let alphabet = ['2', 'c', '6', '5', 'b', '1', '3', '4', '7', '8', '9', '0', 'd', 'e', 'f'];
    match g {
        1 => '2',  // G2
        11 => 'c', // G12
        5 => '6',  // G6
        4 => '5',  // G5
        10 => 'b', // G11
        other => alphabet[other % alphabet.len()],
    }
}

fn gesture_strip(labels: &[usize], width: usize) -> String {
    (0..width).map(|c| symbol(labels[c * labels.len() / width])).collect()
}

fn bool_strip(labels: &[bool], width: usize) -> String {
    (0..width)
        .map(|c| {
            let lo = c * labels.len() / width;
            let hi = ((c + 1) * labels.len() / width).max(lo + 1);
            if labels[lo..hi.min(labels.len())].iter().any(|&b| b) {
                '#'
            } else {
                '.'
            }
        })
        .collect()
}
