//! Network ingress service — the monitor as a deployable endpoint.
//!
//! The in-process story ends at `repro_fleet`: N guarded procedures over
//! one `ShardedMonitorPool`. This binary proves the same pool behind a
//! real TCP front end: framed wire protocol, admission control that sheds
//! excess sessions with a typed BUSY (never delaying admitted ones), and
//! a closed-loop load generator that sweeps offered sessions to find the
//! service's knee. Latency here is end-to-end — client send to DECISION
//! receipt over the socket — not just pool compute time.
//!
//! `--smoke` (the CI gate) asserts, on a small fixed-seed pipeline:
//!
//! 1. the decision stream read off the socket is **bit-identical**
//!    (scores as `to_bits` patterns) to an in-process pool run,
//! 2. at 2x the admission cap, shedding engages and admitted sessions
//!    see zero deadline misses within a generous per-frame budget, and
//! 3. a malformed client gets a typed ERROR + close, after which the
//!    service still serves bit-exact decisions.
//!
//! The default mode sweeps offered load, locates the throughput knee,
//! and writes `BENCH_ingress.json` at the repo root.

use bench::{header, jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::serve::{ServeConfig, ShardedMonitorPool};
use context_monitor::{ContextMode, Precision, TrainedPipeline};
use gestures::Task;
use ingress::client::{ClientError, Connection, ServerMsg};
use ingress::codec::{DecisionMsg, ErrorCode, WIRE_VERSION};
use ingress::loadgen::{self, LoadReport, LoadgenConfig};
use ingress::server::{IngressServer, ServerConfig};
use kinematics::Dataset;
use std::sync::Arc;

/// Numeric tier for every engine behind the socket, from the
/// `MONITOR_PRECISION` env knob (`f32` default, `int8`/`i8` for the
/// quantized tier). An unrecognized value fails loud — a CI matrix row
/// that silently fell back to f32 would fake quantized coverage.
fn monitor_precision() -> Precision {
    match std::env::var("MONITOR_PRECISION") {
        Ok(v) => Precision::parse(&v)
            .unwrap_or_else(|| panic!("MONITOR_PRECISION={v}: expected f32, int8, or i8")),
        Err(_) => Precision::F32,
    }
}

fn train_pipeline(scale: Scale, precision: Precision) -> (Arc<TrainedPipeline>, Dataset) {
    let ds = jigsaws_dataset(Task::Suturing, scale);
    let mut cfg = suturing_monitor_cfg(scale);
    if scale == Scale::Fast {
        // The service bench measures the wire, not the model: a tiny
        // fixed-seed pipeline keeps the gate fast without weakening the
        // bit-equality claim (any trained weights exercise it equally).
        cfg.train.epochs = 2;
        cfg.train_stride = 6;
    }
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut pipeline = TrainedPipeline::train(&ds, &idx, &cfg);
    if precision == Precision::Int8 {
        pipeline.quantize(&ds, &idx).expect("built-in specs are quantizable");
    }
    (Arc::new(pipeline), ds)
}

fn serve_cfg(workers: usize, precision: Precision) -> ServeConfig {
    ServeConfig { workers, precision, ..ServeConfig::default() }
}

fn start_server(
    pipeline: &Arc<TrainedPipeline>,
    max_sessions: usize,
    workers: usize,
    precision: Precision,
) -> IngressServer {
    IngressServer::start(
        Arc::clone(pipeline),
        ServerConfig {
            max_sessions,
            mode: ContextMode::Predicted,
            serve: serve_cfg(workers, precision),
            ..ServerConfig::default()
        },
    )
    .expect("bind ingress server on a loopback port")
}

/// Bit-equality key of one decision: `DecisionMsg::key()`.
type Key = (u32, bool, bool, u8, u32);

/// Decision key stream of an in-process pool over the first `sessions`
/// demos — the ground truth the socket stream must match bit-for-bit.
fn in_process_keys(
    pipeline: &Arc<TrainedPipeline>,
    ds: &Dataset,
    sessions: usize,
    workers: usize,
    precision: Precision,
) -> Vec<Vec<Key>> {
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::clone(pipeline),
        ContextMode::Predicted,
        serve_cfg(workers, precision),
        sessions,
    );
    for (s, demo) in ds.demos.iter().take(sessions).enumerate() {
        for frame in &demo.frames {
            pool.submit(s, frame).expect("Predicted submit cannot fail");
        }
    }
    let mut keys = vec![Vec::new(); sessions];
    for d in pool.flush() {
        let msg = DecisionMsg::from_decision(d.frame as u32, d.output.as_ref());
        keys[d.session].push((d.frame as u32, msg.key()));
    }
    keys.into_iter()
        .map(|mut v| {
            v.sort_by_key(|&(frame, _)| frame);
            v.into_iter().map(|(_, key)| key).collect()
        })
        .collect()
}

/// Streams demo `s` over one closed-loop socket session; returns the
/// decision key stream.
fn socket_session_keys(addr: &str, ds: &Dataset, s: usize) -> Vec<Key> {
    let demo = &ds.demos[s];
    let mut conn = Connection::connect(addr).expect("connect");
    conn.send_hello(false).expect("hello");
    let ServerMsg::Welcome { .. } = conn.recv().expect("welcome") else {
        panic!("expected WELCOME");
    };
    let mut keys = Vec::new();
    for (t, frame) in demo.frames.iter().enumerate() {
        conn.send_frame(t as u32, None, frame).expect("send frame");
        match conn.recv().expect("decision") {
            ServerMsg::Decision(d) => {
                assert_eq!(d.seq, t as u32, "decisions must arrive in frame order");
                keys.push(d.key());
            }
            other => panic!("expected DECISION, got {other:?}"),
        }
    }
    conn.send_goodbye().expect("goodbye");
    match conn.recv().expect("bye") {
        ServerMsg::Bye { delivered } => {
            assert_eq!(delivered, demo.frames.len() as u64, "BYE must account for every frame");
        }
        other => panic!("expected BYE, got {other:?}"),
    }
    keys
}

fn print_report(label: &str, r: &LoadReport) {
    println!(
        "{label}: offered {} admitted {} shed {} | {} decisions in {:.2}s ({:.0}/s) | \
         e2e p50 {:.3} ms p99 {:.3} ms max {:.3} ms | {} deadline misses, {} errors",
        r.offered,
        r.admitted,
        r.shed,
        r.decisions,
        r.elapsed_s,
        r.decisions_per_sec,
        r.latency.p50_ms,
        r.latency.p99_ms,
        r.latency.max_ms,
        r.deadline_misses,
        r.errors
    );
}

/// Small fixed-seed service gate: socket-vs-pool bit-equality, shed at
/// 2x cap with zero admitted-session deadline misses, and survival of a
/// malformed client.
fn smoke() {
    let precision = monitor_precision();
    header("ingress smoke (tiny Suturing pipeline, fixed seeds)");
    println!("gemm backend: {} | tier: {precision}", nn::kernels::gemm_backend_label());
    let (pipeline, ds) = train_pipeline(Scale::Fast, precision);

    // 1. Bit-equality: two concurrent socket sessions vs the pool.
    let server = start_server(&pipeline, 8, 2, precision);
    let addr = server.local_addr().to_string();
    let (a, b) = std::thread::scope(|scope| {
        let (addr_a, addr_b) = (addr.clone(), addr.clone());
        let (ds_a, ds_b) = (&ds, &ds);
        let ha = scope.spawn(move || socket_session_keys(&addr_a, ds_a, 0));
        let hb = scope.spawn(move || socket_session_keys(&addr_b, ds_b, 1));
        (ha.join().expect("session 0"), hb.join().expect("session 1"))
    });
    let want = in_process_keys(&pipeline, &ds, 2, 2, precision);
    assert_eq!(a, want[0], "session 0: socket stream differs from in-process pool");
    assert_eq!(b, want[1], "session 1: socket stream differs from in-process pool");
    assert!(a.iter().any(|k| k.1), "stream never warmed up — vacuous equality");

    // 2. A malformed client gets a typed ERROR + close...
    let mut evil = Connection::connect(&addr).expect("connect");
    evil.send_raw(&[3, 0, 0, 0, WIRE_VERSION, 0x5A, 0]).expect("raw");
    match evil.recv().expect("typed error before close") {
        ServerMsg::Error { code } => assert_eq!(code, ErrorCode::BadKind),
        other => panic!("expected ERROR(BadKind), got {other:?}"),
    }
    assert!(
        matches!(evil.recv(), Err(ClientError::Closed) | Err(ClientError::Io(_))),
        "server must close after a protocol error"
    );
    // ...and the service still serves bit-exact decisions afterwards.
    let again = socket_session_keys(&addr, &ds, 0);
    assert_eq!(again, want[0], "service must stay bit-exact after a malformed client");
    assert_eq!(server.stats().protocol_errors, 1);
    drop(server);

    // 3. Overload: offer 2x the cap. Shedding must engage (typed BUSY,
    // at connect time, never mid-session) and admitted sessions must see
    // zero deadline misses within a generous per-frame budget.
    let cap = 8;
    let server = start_server(&pipeline, cap, 2, precision);
    let report = loadgen::run(
        &server.local_addr().to_string(),
        &LoadgenConfig {
            sessions: 2 * cap,
            frames_per_session: 40,
            threads: 2 * cap,
            deadline_ms: 250.0,
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen");
    print_report("overload (2x cap)", &report);
    assert!(report.shed >= 1, "2x the cap must shed at least one session");
    assert!(report.admitted >= cap, "the cap's worth of sessions must be admitted");
    assert_eq!(report.errors, 0, "no admitted session may see an error");
    assert_eq!(
        report.decisions,
        report.admitted as u64 * 40,
        "every admitted frame must get a decision"
    );
    assert_eq!(
        report.deadline_misses, 0,
        "shedding must protect admitted sessions: zero deadline misses"
    );
    let stats = server.stats();
    assert_eq!(stats.shed as usize, report.shed, "client and server must agree on sheds");

    println!(
        "smoke OK: socket bit-identical to pool, {} shed at 2x cap, 0 deadline misses, \
         malformed client contained",
        report.shed
    );
}

struct Row {
    sessions: usize,
    report: LoadReport,
}

/// Sweeps offered sessions against a high-cap server to find the knee,
/// then demonstrates admission control by capping the same workload.
fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let scale = Scale::from_env();
    let precision = monitor_precision();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    header("training the Suturing monitor");
    let (pipeline, _ds) = train_pipeline(scale, precision);

    let (frames, workers, sweep): (usize, usize, &[usize]) = match scale {
        Scale::Fast => (60, 4, &[1, 2, 4, 8, 16, 32, 64]),
        Scale::Full => (200, 4, &[1, 2, 4, 8, 16, 32, 64, 128]),
    };
    let deadline_ms = 33.3; // one 30 Hz frame interval, end-to-end

    header(&format!(
        "load sweep — closed-loop sessions over TCP ({cores} host core(s), {workers} pool \
         workers, {precision} tier, {} backend)",
        nn::kernels::gemm_backend_label()
    ));
    let mut rows: Vec<Row> = Vec::new();
    for &sessions in sweep {
        // A fresh server per level: no warm pool state leaks across rows.
        let server = start_server(&pipeline, 2 * sessions, workers, precision);
        let report = loadgen::run(
            &server.local_addr().to_string(),
            &LoadgenConfig {
                sessions,
                frames_per_session: frames,
                threads: sessions.min(2 * cores),
                deadline_ms,
                ..LoadgenConfig::default()
            },
        )
        .expect("loadgen");
        print_report(&format!("{sessions:>4} sessions"), &report);
        assert_eq!(report.shed, 0, "the sweep server is never capacity-limited");
        assert_eq!(report.errors, 0);
        rows.push(Row { sessions, report });
    }

    // The knee: the last offered level where throughput still scaled
    // (>= 20% over the previous level) and the p99 stayed within one
    // frame interval. Past it, added sessions only buy queueing delay.
    let mut knee = rows.first().map(|r| r.sessions).unwrap_or(1);
    for pair in rows.windows(2) {
        let (prev, next) = (&pair[0], &pair[1]);
        let scaled = next.report.decisions_per_sec >= 1.2 * prev.report.decisions_per_sec;
        let timely = next.report.latency.p99_ms <= deadline_ms;
        if scaled && timely {
            knee = next.sessions;
        }
    }
    println!(
        "\nknee: ~{knee} concurrent sessions (throughput still scaling, p99 <= {deadline_ms} ms)"
    );

    // Admission-control demo at the knee: cap the server there, offer
    // double, and show shed sessions never degrade admitted ones.
    header("admission control at the knee (offer 2x, shed the excess)");
    let server = start_server(&pipeline, knee, workers, precision);
    let shed_demo = loadgen::run(
        &server.local_addr().to_string(),
        &LoadgenConfig {
            sessions: 2 * knee,
            frames_per_session: frames,
            threads: (2 * knee).min(4 * cores),
            deadline_ms,
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen");
    print_report("2x knee", &shed_demo);

    write_summary(&rows, &shed_demo, knee, cores, workers, frames, deadline_ms, precision);
}

/// Hand-formatted JSON summary (no serde in the bench crate) written to
/// the repo root next to the other `BENCH_*.json` files.
#[allow(clippy::too_many_arguments)]
fn write_summary(
    rows: &[Row],
    shed_demo: &LoadReport,
    knee: usize,
    cores: usize,
    workers: usize,
    frames: usize,
    deadline_ms: f64,
    precision: Precision,
) {
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"ingress\",\n  \"cores\": {cores},\n  \"pool_workers\": {workers},\n  \
         \"frames_per_session\": {frames},\n  \"deadline_ms\": {deadline_ms},\n  \
         \"tier\": \"{precision}\",\n  \"gemm_backend\": \"{}\",\n  \
         \"knee_sessions\": {knee},\n  \"rows\": [\n",
        nn::kernels::gemm_backend_label()
    ));
    for (idx, row) in rows.iter().enumerate() {
        let r = &row.report;
        json.push_str(&format!(
            "    {{\"sessions\": {}, \"admitted\": {}, \"shed\": {},\n     \
             \"decisions_per_sec\": {:.1}, \"e2e_p50_ms\": {:.4}, \"e2e_p99_ms\": {:.4},\n     \
             \"e2e_max_ms\": {:.4}, \"deadline_misses\": {}}}{}\n",
            row.sessions,
            r.admitted,
            r.shed,
            r.decisions_per_sec,
            r.latency.p50_ms,
            r.latency.p99_ms,
            r.latency.max_ms,
            r.deadline_misses,
            if idx + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"shed_demo\": {{\"offered\": {}, \"admitted\": {}, \"shed\": {},\n    \
         \"shed_rate\": {:.3}, \"e2e_p50_ms\": {:.4}, \"e2e_p99_ms\": {:.4},\n    \
         \"deadline_misses\": {}}}\n}}\n",
        shed_demo.offered,
        shed_demo.admitted,
        shed_demo.shed,
        shed_demo.shed as f64 / shed_demo.offered.max(1) as f64,
        shed_demo.latency.p50_ms,
        shed_demo.latency.p99_ms,
        shed_demo.deadline_misses,
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingress.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("\nwrote ingress service summary to {path}"),
        Err(e) => eprintln!("\ncould not write {path}: {e}"),
    }
}
