//! Fleet-scale closed loop — the serving story behind the paper's claim.
//!
//! `repro_closed_loop` proves one simulated robot can be stopped in time;
//! this binary proves a **fleet** can: N concurrent guarded procedures ride
//! one shared `ShardedMonitorPool`, gating decisions travel the sharded
//! micro-batched serving tick, and a per-tick deadline fails safe (hold,
//! never an un-gated command) when a decision arrives late. The pool's
//! telemetry decomposes the reaction-time margin into per-decision compute
//! vs. ingress-to-egress queueing.
//!
//! `--smoke` (the CI gate) asserts, on a small fixed-seed grid:
//!
//! 1. the fleet `ClosedLoopReport` is **bit-identical** for 1 vs N pool
//!    workers (and different fleet sizes),
//! 2. it is bit-identical to the single-robot `run_closed_loop_campaign`
//!    (prevention strictly above the unmonitored 0% baseline), and
//! 3. under a forced deadline miss (stalled shard + tiny budget), **zero**
//!    un-gated commands escape and every late decision applies exactly once.

use bench::{block_transfer_dataset, block_transfer_monitor_cfg, header, Scale};
use context_monitor::{Precision, TrainedPipeline};
use faults::{
    run_closed_loop_campaign, run_fleet_campaign, run_forced_miss_drill, CampaignConfig,
    ClosedLoopConfig, FleetConfig,
};
use raven_sim::SimConfig;
use reactor::{MitigationPolicy, ReactorConfig};
use std::sync::Arc;
use std::time::Duration;

/// Numeric tier for every engine in the campaign, from the
/// `MONITOR_PRECISION` env knob (`f32` default, `int8`/`i8` for the
/// quantized tier). An unrecognized value fails loud — a CI matrix row that
/// silently fell back to f32 would fake quantized coverage.
fn monitor_precision() -> Precision {
    match std::env::var("MONITOR_PRECISION") {
        Ok(v) => Precision::parse(&v)
            .unwrap_or_else(|| panic!("MONITOR_PRECISION={v}: expected f32, int8, or i8")),
        Err(_) => Precision::F32,
    }
}

fn train_pipeline(scale: Scale, precision: Precision) -> Arc<TrainedPipeline> {
    let ds = block_transfer_dataset(scale);
    let cfg = block_transfer_monitor_cfg(scale);
    let idx: Vec<usize> = (0..ds.len()).collect();
    let mut pipeline = TrainedPipeline::train(&ds, &idx, &cfg);
    if precision == Precision::Int8 {
        pipeline.quantize(&ds, &idx).expect("built-in specs are quantizable");
    }
    Arc::new(pipeline)
}

fn closed_loop(sim: SimConfig, scale: f32, precision: Precision) -> ClosedLoopConfig {
    ClosedLoopConfig {
        campaign: CampaignConfig { sim, seed: bench::SEED, scale, threads: 8 },
        reactor: ReactorConfig {
            policy: MitigationPolicy::StopAndHold,
            precision,
            ..ReactorConfig::default()
        },
    }
}

fn print_fleet(report: &faults::ClosedLoopReport, stats: &faults::FleetStats) {
    print!("{}", report.summary().render());
    println!(
        "fleet: {} trials, {} frames through the pool, {} deadline misses",
        stats.trials, stats.frames, stats.deadline_misses
    );
    println!("{}", stats.pool);
}

fn main() {
    if std::env::args().any(|a| a == "--smoke") {
        smoke();
        return;
    }

    let scale = Scale::from_env();
    let (sim, grid_scale) = match scale {
        Scale::Fast => (SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 }, 0.25),
        Scale::Full => (SimConfig::default(), 1.0),
    };

    let precision = monitor_precision();
    header("training the Block Transfer monitor");
    let pipeline = train_pipeline(scale, precision);

    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    println!("gemm backend: {} | tier: {precision}", nn::kernels::gemm_backend_label());
    for (workers, fleet) in [(1usize, 4usize), (4, 16)] {
        header(&format!(
            "fleet campaign — {fleet} concurrent procedures x {workers} pool workers \
             ({cores} host core(s), {precision} tier)"
        ));
        let cfg = FleetConfig::barrier(closed_loop(sim, grid_scale, precision), workers, fleet);
        let (report, stats) = run_fleet_campaign(&cfg, &pipeline).expect("valid config");
        print_fleet(&report, &stats);
    }

    header("forced deadline miss (stalled shard, 2 ms budget)");
    let mut cfg = FleetConfig::barrier(closed_loop(sim, grid_scale, precision), 2, 2);
    cfg.tick_budget_ms = Some(2.0);
    let drill =
        run_forced_miss_drill(&cfg, &pipeline, Duration::from_millis(150)).expect("valid config");
    println!(
        "{} trials x {} ticks: {} deadline misses, {} un-gated commands during misses, \
         {}/{} decisions applied",
        drill.trials,
        drill.ticks,
        drill.deadline_misses,
        drill.ungated_during_miss,
        drill.decisions_applied,
        drill.frames
    );
}

/// Small fixed-seed fleet campaign: the CI gate for worker-count
/// determinism, single-robot equivalence, and deadline-miss fail-safety.
fn smoke() {
    let precision = monitor_precision();
    header("fleet smoke (small grid, fixed seeds)");
    println!("gemm backend: {} | tier: {precision}", nn::kernels::gemm_backend_label());
    let sim = SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 };
    let pipeline = train_pipeline(Scale::Fast, precision);
    let cl = closed_loop(sim, 0.05, precision);

    let (one, _) = run_fleet_campaign(&FleetConfig::barrier(cl, 1, 3), &pipeline)
        .expect("smoke config is valid");
    let (many, stats) = run_fleet_campaign(&FleetConfig::barrier(cl, 4, 8), &pipeline)
        .expect("smoke config is valid");
    assert_eq!(
        one, many,
        "fleet report must be bit-identical for 1 vs 4 pool workers (3 vs 8 sessions)"
    );
    assert_eq!(stats.deadline_misses, 0, "barrier drain never misses a deadline");

    let single = run_closed_loop_campaign(&cl, &pipeline).expect("smoke config is valid");
    assert_eq!(one, single, "fleet must reproduce the single-robot closed loop bit-for-bit");

    let s = one.summary();
    assert!(s.baseline_unsafe > 0, "smoke grid produced no baseline unsafe events");
    assert!(s.prevented > 0, "prevention must be strictly above the unmonitored baseline (0%)");
    print_fleet(&one, &stats);

    let mut drill_cfg = FleetConfig::barrier(cl, 2, 2);
    drill_cfg.tick_budget_ms = Some(2.0);
    let drill = run_forced_miss_drill(&drill_cfg, &pipeline, Duration::from_millis(120))
        .expect("smoke config is valid");
    assert!(drill.deadline_misses > 0, "the stalled shard must force deadline misses");
    assert_eq!(drill.ungated_during_miss, 0, "zero un-gated commands under a deadline miss");
    assert_eq!(drill.decisions_applied, drill.frames, "late decisions applied exactly once");

    println!(
        "smoke OK: deterministic across workers, fleet == single-robot, prevented {}/{} \
         ({}% > unmonitored 0%), {} forced misses all fail-safe",
        s.prevented,
        s.baseline_unsafe,
        (100.0 * s.prevention_rate()).round(),
        drill.deadline_misses
    );
}
