//! Table VI — erroneous-gesture classification step for Block Transfer on
//! the Raven II (input time-window = 10, stride = 1, C,G features):
//! {gesture-specific Conv, gesture-specific LSTM, non-gesture-specific Conv}.

use bench::{block_transfer_dataset, block_transfer_monitor_cfg, folds_to_run, header, Scale};
use context_monitor::{ContextMode, ErrorModelKind, TrainStages, TrainedPipeline};
use eval::BinaryCounts;

fn main() {
    let scale = Scale::from_env();
    let ds = block_transfer_dataset(scale);

    let conv = ErrorModelKind::Conv { c1: 24, c2: 16, dense: 16 };
    let lstm = ErrorModelKind::Lstm { hidden: 24, dense: 16 };
    let setups = [
        ("gesture-specific  Conv  C,G", true, conv),
        ("gesture-specific  LSTM  C,G", true, lstm),
        ("non-gesture-spec. Conv  C,G", false, conv),
    ];

    header(
        "Table VI — erroneous gesture classification step, Block Transfer (window=10, stride=1)",
    );
    println!("{:<32} {:>6} {:>6} {:>6} {:>6}", "Setup", "TPR", "TNR", "PPV", "NPV");
    for (label, specific, model) in setups {
        let mut cfg = block_transfer_monitor_cfg(scale);
        cfg.error_model = model;

        let folds = ds.loso_folds();
        let n_folds = folds_to_run(scale, folds.len());
        let mut counts = BinaryCounts::default();
        for fold in folds.iter().take(n_folds) {
            let (pipeline, _) =
                TrainedPipeline::train_stages(&ds, &fold.train, &cfg, TrainStages::ERRORS_ONLY);
            let mode = if specific { ContextMode::Perfect } else { ContextMode::NoContext };
            for &i in &fold.test {
                let demo = &ds.demos[i];
                let run = pipeline.run_demo(demo, mode);
                counts
                    .merge(&BinaryCounts::from_predictions(&run.unsafe_pred, &demo.unsafe_labels));
            }
        }
        println!(
            "{:<32} {:>6.2} {:>6.2} {:>6.2} {:>6.2}",
            label,
            counts.tpr(),
            counts.tnr(),
            counts.ppv(),
            counts.npv()
        );
    }
    println!(
        "\npaper (Table VI): gesture-specific Conv 0.62/0.87/0.65/0.86; LSTM 0.62/0.85/0.57/0.89;\n\
         non-gesture-specific Conv 0.59/0.85/0.58/0.85.\n\
         shape to hold: gesture-specific setups beat the non-specific baseline."
    );
}
