//! Fig. 9 — best, median, and worst per-demonstration ROC curves for the
//! whole pipeline in the context-specific and non-context-specific setups
//! (Suturing). Curves are emitted as CSV blocks for plotting.

use bench::{folds_to_run, header, jigsaws_dataset, suturing_monitor_cfg, Scale};
use context_monitor::{evaluate_pipeline, ContextMode, PipelineEval, TrainedPipeline};
use gestures::Task;

fn main() {
    let scale = Scale::from_env();
    let ds = jigsaws_dataset(Task::Suturing, scale);
    let cfg = suturing_monitor_cfg(scale);
    let folds = ds.loso_folds();
    let n_folds = folds_to_run(scale, folds.len());

    for mode in [ContextMode::Predicted, ContextMode::NoContext] {
        let mut pooled: Option<PipelineEval> = None;
        for fold in folds.iter().take(n_folds) {
            let pipeline = TrainedPipeline::train(&ds, &fold.train, &cfg);
            let eval = evaluate_pipeline(&pipeline, &ds, &fold.test, mode);
            pooled = Some(match pooled.take() {
                None => eval,
                Some(mut acc) => {
                    acc.demos.extend(eval.demos);
                    acc
                }
            });
        }
        let eval = pooled.expect("folds");
        let curves = eval.roc_curves();
        header(&format!("Fig. 9 — {mode}: {} demos with defined ROC", curves.len()));
        if curves.is_empty() {
            println!("(no test demo had both classes)");
            continue;
        }
        let picks = [("worst", 0usize), ("median", curves.len() / 2), ("best", curves.len() - 1)];
        for (label, idx) in picks {
            let (id, curve) = &curves[idx];
            println!("\n# {label}: demo {id}, AUC = {:.3}", curve.auc());
            print!("{}", curve.to_csv());
        }
        println!(
            "\nmode summary: mean AUC {} over {} demos",
            eval.auc_summary(),
            eval.auc_summary().n
        );
    }
    println!(
        "\npaper's claim to check: the context-specific pipeline's curves dominate the\n\
         non-context-specific baseline at every percentile (best/median/worst)."
    );
}
