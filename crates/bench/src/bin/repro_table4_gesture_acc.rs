//! Table IV — gesture classification accuracy in the LOSO setup:
//! our stacked-LSTM classifier vs. SC-CRF [44] vs. SDSDL [45] on the three
//! JIGSAWS tasks, plus the Block Transfer task (ours only, as in the paper).

use baselines::{ScCrf, ScCrfConfig, Sdsdl, SdsdlConfig};
use bench::{
    block_transfer_dataset, block_transfer_monitor_cfg, compare, folds_to_run, header,
    jigsaws_dataset, suturing_monitor_cfg, Scale,
};
use context_monitor::{ContextMode, TrainStages, TrainedPipeline};
use gestures::Task;
use kinematics::Dataset;
use nn::Mat;

fn main() {
    let scale = Scale::from_env();
    header("Table IV — gesture classification accuracy (LOSO)");
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>14} {:>8}",
        "Task", "This work", "SC-CRF", "SDSDL", "train frames", "demos"
    );

    let mut rows = Vec::new();
    for task in [Task::Suturing, Task::KnotTying, Task::NeedlePassing, Task::BlockTransfer] {
        let ds = if task == Task::BlockTransfer {
            block_transfer_dataset(scale)
        } else {
            jigsaws_dataset(task, scale)
        };
        let run_baselines = task != Task::BlockTransfer; // paper: N/A for BT
        let (ours, sccrf, sdsdl) = evaluate_task(task, &ds, scale, run_baselines);
        println!(
            "{:<16} {:>9.2}% {:>10} {:>10} {:>14} {:>8}",
            task.to_string(),
            100.0 * ours,
            fmt_opt(sccrf),
            fmt_opt(sdsdl),
            ds.total_frames(),
            ds.len()
        );
        rows.push((task, ours, sccrf, sdsdl));
    }

    header("paper vs measured");
    let paper = [
        (Task::Suturing, "84.49% / 85.24% / 86.32%"),
        (Task::KnotTying, "81.69% / 80.64% / 82.54%"),
        (Task::NeedlePassing, "69.34% / 77.47% / 74.88%"),
        (Task::BlockTransfer, "95.16% / N/A / N/A"),
    ];
    for ((task, ours, sccrf, sdsdl), (_, p)) in rows.iter().zip(paper.iter()) {
        compare(
            &format!("{task} (ours / SC-CRF / SDSDL)"),
            p,
            &format!("{:.2}% / {} / {}", 100.0 * ours, fmt_opt(*sccrf), fmt_opt(*sdsdl)),
        );
    }
    println!(
        "\nshape to hold: Block Transfer (simple, no gesture recurrence, more data) is the\n\
         easiest task; Needle Passing the hardest; all three methods are competitive."
    );
}

fn fmt_opt(v: Option<f32>) -> String {
    match v {
        Some(a) => format!("{:.2}%", 100.0 * a),
        None => "N/A".to_string(),
    }
}

fn evaluate_task(
    task: Task,
    ds: &Dataset,
    scale: Scale,
    run_baselines: bool,
) -> (f32, Option<f32>, Option<f32>) {
    let folds = ds.loso_folds();
    let n_folds = folds_to_run(scale, folds.len());

    let cfg = if task == Task::BlockTransfer {
        block_transfer_monitor_cfg(scale)
    } else {
        suturing_monitor_cfg(scale)
    };

    let mut ours_acc = Vec::new();
    let mut crf_acc = Vec::new();
    let mut dict_acc = Vec::new();

    for fold in folds.iter().take(n_folds) {
        // Ours: stacked-LSTM gesture classifier (stage 1 only).
        let (pipeline, _) =
            TrainedPipeline::train_stages(ds, &fold.train, &cfg, TrainStages::GESTURE_ONLY);
        let mut correct = 0usize;
        let mut total = 0usize;
        for &i in &fold.test {
            let demo = &ds.demos[i];
            let run = pipeline.run_demo(demo, ContextMode::Predicted);
            let truth = demo.gesture_indices();
            correct += run.gesture_pred.iter().zip(truth.iter()).filter(|(a, b)| a == b).count();
            total += truth.len();
        }
        ours_acc.push(correct as f32 / total.max(1) as f32);

        if run_baselines {
            // Baselines consume per-frame feature matrices.
            let frames: Vec<(Mat, Vec<usize>)> = ds
                .demos
                .iter()
                .map(|d| (d.feature_matrix(&cfg.features), d.gesture_indices()))
                .collect();
            let train_data: Vec<(&Mat, &[usize])> =
                fold.train.iter().map(|&i| (&frames[i].0, frames[i].1.as_slice())).collect();
            let test_data: Vec<(&Mat, &[usize])> =
                fold.test.iter().map(|&i| (&frames[i].0, frames[i].1.as_slice())).collect();

            let crf = ScCrf::train(&train_data, &ScCrfConfig::default());
            crf_acc.push(crf.accuracy(&test_data));

            let sdsdl_cfg = SdsdlConfig {
                atoms: if scale == Scale::Full { 48 } else { 24 },
                ..SdsdlConfig::default()
            };
            let dict = Sdsdl::train(&train_data, &sdsdl_cfg);
            dict_acc.push(dict.accuracy(&test_data));
        }
    }

    let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len().max(1) as f32;
    (mean(&ours_acc), run_baselines.then(|| mean(&crf_acc)), run_baselines.then(|| mean(&dict_acc)))
}
