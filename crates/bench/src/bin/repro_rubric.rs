//! Table II — the gesture-specific error rubric.
//!
//! Prints every gesture of the Suturing/Block Transfer vocabulary with its
//! common failure modes and kinematic fault causes, exactly the knowledge
//! the data annotation and error injection are driven by.

use gestures::{error_modes, Gesture, Task, ALL_TASKS};

fn main() {
    println!("Table II — gesture-specific errors in Suturing and Block Transfer\n");
    println!(
        "{:<5} {:<45} {:<55} Potential causes (faults)",
        "Gest", "Description", "Common failure modes"
    );
    let mut listed: Vec<Gesture> =
        Task::Suturing.gestures().iter().chain(Task::BlockTransfer.gestures()).copied().collect();
    listed.sort();
    listed.dedup();
    for g in listed {
        let modes = error_modes(g);
        if modes.is_empty() {
            println!("{:<5} {:<45} {:<55} -", g.to_string(), g.description(), "(no common errors)");
            continue;
        }
        for (i, m) in modes.iter().enumerate() {
            let causes: Vec<String> = m.causes.iter().map(|c| c.to_string()).collect();
            let (gc, desc) = if i == 0 {
                (g.to_string(), g.description().to_string())
            } else {
                (String::new(), String::new())
            };
            println!("{:<5} {:<45} {:<55} {}", gc, desc, m.failure_mode, causes.join(" / "));
        }
    }

    println!("\nTask vocabularies (Fig. 3 support):");
    for t in ALL_TASKS {
        let v: Vec<String> = t.gestures().iter().map(|g| g.to_string()).collect();
        println!("  {:<15} {}", t.to_string(), v.join(", "));
    }
}
