//! # `bench` — the reproduction harness
//!
//! One `repro_*` binary per table/figure of the paper (see DESIGN.md §9 for
//! the index) plus Criterion benches for the compute-time claims. This
//! library holds the shared scaffolding: scaled dataset builders, monitor
//! configurations per task, and table formatting.
//!
//! All binaries accept the `REPRO_SCALE` environment variable:
//!
//! * `fast` (default) — scaled-down datasets/epochs; minutes on a laptop.
//! * `full` — paper-sized datasets (39 Suturing demos, 115 Block Transfer
//!   trials, 651 fault injections) and longer training.

#![warn(missing_docs)]

use context_monitor::{ErrorModelKind, MonitorConfig};
use faults::{build_block_transfer_dataset, BlockTransferDataConfig};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::{Dataset, FeatureSet};
use raven_sim::SimConfig;

/// Harness scale, from the `REPRO_SCALE` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Scaled-down (default): minutes end-to-end.
    Fast,
    /// Paper-sized datasets and sweeps.
    Full,
}

impl Scale {
    /// Reads `REPRO_SCALE` (`fast`/`full`), defaulting to fast.
    pub fn from_env() -> Self {
        match std::env::var("REPRO_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            _ => Scale::Fast,
        }
    }
}

/// Master seed used by all repro binaries (results are deterministic).
pub const SEED: u64 = 2020;

/// Synthetic JIGSAWS-like dataset for a dVRK task.
pub fn jigsaws_dataset(task: Task, scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Fast => GeneratorConfig {
            num_demos: 24,
            duration_scale: 0.45,
            max_gestures: 14,
            ..GeneratorConfig::new(task)
        },
        Scale::Full => GeneratorConfig::new(task),
    };
    generate(&cfg.with_seed(SEED ^ task as u64))
}

/// Block Transfer dataset from the Raven II simulator + fault injection.
pub fn block_transfer_dataset(scale: Scale) -> Dataset {
    let cfg = match scale {
        Scale::Fast => BlockTransferDataConfig {
            fault_free: 6,
            faulty: 18,
            sim: SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 },
            seed: SEED,
        },
        Scale::Full => BlockTransferDataConfig {
            fault_free: 20,
            faulty: 95,
            sim: SimConfig { hz: 100.0, duration_s: 8.0, seed: 0, tremor: 0.4 },
            seed: SEED,
        },
    };
    build_block_transfer_dataset(&cfg)
}

/// Monitor configuration for the Suturing (dVRK) experiments: the paper's
/// best error-step feature set is C,R,G with window 5 (Table V).
pub fn suturing_monitor_cfg(scale: Scale) -> MonitorConfig {
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(SEED);
    if scale == Scale::Full {
        cfg.gesture_hidden = (96, 48);
        cfg.gesture_dense = 32;
        cfg.error_model = ErrorModelKind::Conv { c1: 48, c2: 32, dense: 24 };
        cfg.train.epochs = 30;
        cfg.train_stride = 1;
    }
    cfg
}

/// Monitor configuration for the Block Transfer (Raven II) experiments:
/// C,G features, window 10 (Table VI).
pub fn block_transfer_monitor_cfg(scale: Scale) -> MonitorConfig {
    let mut cfg = MonitorConfig::fast(FeatureSet::CG).with_seed(SEED).with_window(10, 1);
    cfg.train_stride = 3;
    if scale == Scale::Full {
        cfg.gesture_hidden = (96, 48);
        cfg.error_model = ErrorModelKind::Conv { c1: 48, c2: 32, dense: 24 };
        cfg.train.epochs = 30;
        cfg.train_stride = 2;
    }
    cfg
}

/// Number of LOSO folds to evaluate (fast mode subsamples for speed).
pub fn folds_to_run(scale: Scale, total: usize) -> usize {
    match scale {
        Scale::Fast => total.min(2),
        Scale::Full => total,
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints a `paper vs measured` line.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("{metric:<46} paper: {paper:<18} measured: {measured}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parses_env_values() {
        // Only exercises the default path (setting env vars in tests races
        // with other tests).
        assert_eq!(Scale::from_env(), Scale::Fast);
    }

    #[test]
    fn fast_datasets_are_small_but_valid() {
        let ds = jigsaws_dataset(Task::Suturing, Scale::Fast);
        assert_eq!(ds.len(), 24);
        ds.validate().unwrap();
        let bt = block_transfer_dataset(Scale::Fast);
        assert_eq!(bt.len(), 24);
        bt.validate().unwrap();
    }

    #[test]
    fn configs_use_paper_feature_sets() {
        assert_eq!(suturing_monitor_cfg(Scale::Fast).features, FeatureSet::CRG);
        let bt = block_transfer_monitor_cfg(Scale::Fast);
        assert_eq!(bt.features, FeatureSet::CG);
        assert_eq!(bt.window.width, 10);
    }
}
