//! One-vs-rest linear SVM trained by SGD on the hinge loss (the multi-class
//! linear SVM used by SDSDL [45]).

use nn::Mat;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Linear SVM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SvmConfig {
    /// SGD epochs.
    pub epochs: usize,
    /// Initial learning rate (decayed 1/(1+t)).
    pub lr: f32,
    /// L2 regularization strength.
    pub lambda: f32,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { epochs: 20, lr: 0.05, lambda: 1e-4, seed: 0 }
    }
}

/// One-vs-rest linear SVM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Per-class weight vectors, `(classes, dim)`.
    weights: Mat,
    /// Per-class biases.
    bias: Vec<f32>,
}

impl LinearSvm {
    /// Trains on `(feature, label)` rows; `x` is `(n, dim)`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or labels exceed `classes`.
    pub fn train(x: &Mat, labels: &[usize], classes: usize, cfg: &SvmConfig) -> Self {
        assert!(x.rows() > 0, "LinearSvm::train: empty input");
        assert_eq!(x.rows(), labels.len(), "labels/rows mismatch");
        assert!(labels.iter().all(|&l| l < classes), "label out of range");

        let dim = x.cols();
        let mut weights = Mat::zeros(classes, dim);
        let mut bias = vec![0.0f32; classes];
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..x.rows()).collect();
        let mut t = 0usize;

        for _ in 0..cfg.epochs {
            order.shuffle(&mut rng);
            for &i in &order {
                t += 1;
                let lr = cfg.lr / (1.0 + cfg.lambda * cfg.lr * t as f32);
                let xi = x.row(i);
                for c in 0..classes {
                    let y = if labels[i] == c { 1.0f32 } else { -1.0 };
                    let margin = y * (dot(weights.row(c), xi) + bias[c]);
                    // L2 shrink.
                    let shrink = 1.0 - lr * cfg.lambda;
                    for w in weights.row_mut(c) {
                        *w *= shrink;
                    }
                    if margin < 1.0 {
                        for (w, &xv) in weights.row_mut(c).iter_mut().zip(xi.iter()) {
                            *w += lr * y * xv;
                        }
                        bias[c] += lr * y;
                    }
                }
            }
        }
        Self { weights, bias }
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.bias.len()
    }

    /// Per-class decision scores for one feature row.
    pub fn scores(&self, x: &[f32]) -> Vec<f32> {
        (0..self.classes()).map(|c| dot(self.weights.row(c), x) + self.bias[c]).collect()
    }

    /// Predicted class for one feature row.
    pub fn predict(&self, x: &[f32]) -> usize {
        let scores = self.scores(x);
        let mut best = 0;
        for (c, &s) in scores.iter().enumerate() {
            if s > scores[best] {
                best = c;
            }
        }
        best
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(n: usize) -> (Mat, Vec<usize>) {
        // Three linearly separable clusters on a triangle.
        let centers = [(0.0f32, 3.0f32), (3.0, -2.0), (-3.0, -2.0)];
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let c = i % 3;
            let jitter = ((i * 37 % 100) as f32 / 100.0 - 0.5) * 0.8;
            data.extend_from_slice(&[centers[c].0 + jitter, centers[c].1 - jitter]);
            labels.push(c);
        }
        (Mat::from_vec(n, 2, data), labels)
    }

    #[test]
    fn svm_separates_blobs() {
        let (x, y) = blobs(90);
        let svm = LinearSvm::train(&x, &y, 3, &SvmConfig::default());
        let correct = (0..x.rows()).filter(|&i| svm.predict(x.row(i)) == y[i]).count();
        assert!(correct as f32 > 0.95 * x.rows() as f32, "{correct}/90 correct");
    }

    #[test]
    fn scores_have_one_entry_per_class() {
        let (x, y) = blobs(30);
        let svm = LinearSvm::train(&x, &y, 3, &SvmConfig::default());
        assert_eq!(svm.scores(x.row(0)).len(), 3);
        assert_eq!(svm.classes(), 3);
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = blobs(30);
        let a = LinearSvm::train(&x, &y, 3, &SvmConfig::default());
        let b = LinearSvm::train(&x, &y, 3, &SvmConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_labels() {
        let (x, _) = blobs(3);
        let _ = LinearSvm::train(&x, &[0, 1, 5], 3, &SvmConfig::default());
    }
}
