//! # `baselines` — the comparison methods of Table IV
//!
//! The paper compares its stacked-LSTM gesture classifier against two
//! kinematics-only state-of-the-art methods:
//!
//! * **SC-CRF** (Lea et al. [44]) — a skip-chain conditional random field
//!   ([`sccrf::ScCrf`]),
//! * **SDSDL** (Sefati et al. [45]) — shared discriminative sparse
//!   dictionary learning with a multi-class linear SVM ([`sdsdl::Sdsdl`]).
//!
//! Both consume per-frame kinematics and emit per-frame gesture labels, so
//! they drop into the same LOSO evaluation as the LSTM classifier. (The
//! third baseline of the paper — the non-context-specific error detector —
//! lives in `context-monitor` as `ContextMode::NoContext`.)

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops mirror the math in numeric kernels

pub mod scaler;
pub mod sccrf;
pub mod sdsdl;
pub mod svm;

pub use scaler::Scaler;
pub use sccrf::{ScCrf, ScCrfConfig};
pub use sdsdl::{Sdsdl, SdsdlConfig};
pub use svm::{LinearSvm, SvmConfig};
