//! Per-column standardization shared by the baselines (each baseline owns
//! its scaler so it can be trained on raw feature matrices).

use nn::Mat;
use serde::{Deserialize, Serialize};

/// Per-column z-score scaler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl Scaler {
    /// Fits column statistics over a set of `(frames, features)` matrices.
    ///
    /// # Panics
    ///
    /// Panics if `mats` is empty, contains no rows, or widths differ.
    pub fn fit<'a>(mats: impl IntoIterator<Item = &'a Mat>) -> Self {
        let mut count = 0usize;
        let mut mean: Vec<f64> = Vec::new();
        let mut m2: Vec<f64> = Vec::new();
        for m in mats {
            if mean.is_empty() {
                mean = vec![0.0; m.cols()];
                m2 = vec![0.0; m.cols()];
            }
            assert_eq!(m.cols(), mean.len(), "Scaler::fit: width mismatch");
            for r in m.iter_rows() {
                count += 1;
                for (c, &x) in r.iter().enumerate() {
                    // Welford's online update.
                    let delta = x as f64 - mean[c];
                    mean[c] += delta / count as f64;
                    m2[c] += delta * (x as f64 - mean[c]);
                }
            }
        }
        assert!(count > 0, "Scaler::fit: no rows");
        let std = m2.iter().map(|&v| ((v / count as f64).sqrt() as f32).max(1e-6)).collect();
        Self { mean: mean.into_iter().map(|x| x as f32).collect(), std }
    }

    /// Number of columns.
    pub fn dims(&self) -> usize {
        self.mean.len()
    }

    /// Applies the scaling to a matrix.
    ///
    /// # Panics
    ///
    /// Panics on width mismatch.
    pub fn apply(&self, m: &Mat) -> Mat {
        assert_eq!(m.cols(), self.dims(), "Scaler::apply: width mismatch");
        let cols = self.dims();
        let data = m
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, &x)| (x - self.mean[i % cols]) / self.std[i % cols])
            .collect();
        Mat::from_vec(m.rows(), m.cols(), data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_apply_standardizes() {
        let a = Mat::from_rows(&[&[0.0, 10.0], &[2.0, 30.0]]);
        let b = Mat::from_rows(&[&[4.0, 50.0], &[6.0, 70.0]]);
        let s = Scaler::fit([&a, &b]);
        let t = s.apply(&a);
        // mean of col0 = 3, std = sqrt(5); first value (0-3)/sqrt(5).
        assert!((t[(0, 0)] + 3.0 / 5.0_f32.sqrt()).abs() < 1e-5);
    }

    #[test]
    fn constant_column_does_not_blow_up() {
        let a = Mat::from_rows(&[&[5.0], &[5.0]]);
        let s = Scaler::fit([&a]);
        let t = s.apply(&a);
        assert!(t.as_slice().iter().all(|x| x.is_finite()));
    }
}
