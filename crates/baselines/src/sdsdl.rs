//! Shared Discriminative Sparse Dictionary Learning, after Sefati et al.
//! [45]: "jointly learn a common dictionary for all gestures in an
//! unsupervised manner together with the parameters of a multi-class linear
//! SVM".
//!
//! Implementation: a shared dictionary fitted by alternating orthogonal
//! matching pursuit (sparse coding) and mean-residual atom updates
//! (MOD-style), followed by a one-vs-rest linear SVM on the sparse codes.
//! Per-frame predictions are median-filtered for temporal smoothness.

use crate::scaler::Scaler;
use crate::svm::{LinearSvm, SvmConfig};
use nn::Mat;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// SDSDL configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdsdlConfig {
    /// Dictionary atoms.
    pub atoms: usize,
    /// Non-zeros per sparse code (OMP sparsity).
    pub sparsity: usize,
    /// Dictionary-learning alternations.
    pub dict_iters: usize,
    /// SVM training.
    pub svm: SvmConfig,
    /// Number of label classes.
    pub classes: usize,
    /// Median-filter half-width for temporal smoothing (0 disables).
    pub smooth: usize,
    /// Seed for dictionary init.
    pub seed: u64,
}

impl Default for SdsdlConfig {
    fn default() -> Self {
        Self {
            atoms: 32,
            sparsity: 4,
            dict_iters: 4,
            svm: SvmConfig::default(),
            classes: gestures::NUM_GESTURES,
            smooth: 4,
            seed: 0,
        }
    }
}

/// A trained SDSDL model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sdsdl {
    cfg: SdsdlConfig,
    scaler: Scaler,
    /// Dictionary, `(atoms, dim)`, unit-norm rows.
    dict: Mat,
    svm: LinearSvm,
}

impl Sdsdl {
    /// Trains on `(frames, labels)` sequences.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or labels mismatch frames.
    pub fn train(data: &[(&Mat, &[usize])], cfg: &SdsdlConfig) -> Self {
        assert!(!data.is_empty(), "Sdsdl::train: no sequences");
        for (x, y) in data {
            assert_eq!(x.rows(), y.len(), "frames/labels mismatch");
        }
        let scaler = Scaler::fit(data.iter().map(|(x, _)| *x));

        // Pool all frames (scaled).
        let mut frames: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for (x, y) in data {
            let s = scaler.apply(x);
            for (r, &l) in s.iter_rows().zip(y.iter()) {
                frames.push(r.to_vec());
                labels.push(l);
            }
        }
        let dim = frames[0].len();

        // Initialize the dictionary from random frames.
        let mut rng = SmallRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..frames.len()).collect();
        order.shuffle(&mut rng);
        let mut dict = Mat::zeros(cfg.atoms, dim);
        for a in 0..cfg.atoms {
            let src = &frames[order[a % order.len()]];
            dict.row_mut(a).copy_from_slice(src);
            normalize_row(dict.row_mut(a));
        }

        // Alternate sparse coding and atom updates.
        for _ in 0..cfg.dict_iters {
            let mut atom_acc = Mat::zeros(cfg.atoms, dim);
            let mut atom_n = vec![0usize; cfg.atoms];
            for f in &frames {
                let code = omp(&dict, f, cfg.sparsity);
                for &(a, w) in &code {
                    // Accumulate the direction each atom is used in.
                    let acc = atom_acc.row_mut(a);
                    for (av, &xv) in acc.iter_mut().zip(f.iter()) {
                        *av += w.signum() * xv;
                    }
                    atom_n[a] += 1;
                }
            }
            for a in 0..cfg.atoms {
                if atom_n[a] > 0 {
                    let row = atom_acc.row(a).to_vec();
                    dict.row_mut(a).copy_from_slice(&row);
                    normalize_row(dict.row_mut(a));
                }
            }
        }

        // Sparse-code every frame and fit the SVM on dense code vectors.
        let mut codes = Mat::zeros(frames.len(), cfg.atoms);
        for (i, f) in frames.iter().enumerate() {
            for (a, w) in omp(&dict, f, cfg.sparsity) {
                codes[(i, a)] = w;
            }
        }
        let svm = LinearSvm::train(&codes, &labels, cfg.classes, &cfg.svm);

        Self { cfg: *cfg, scaler, dict, svm }
    }

    /// Sparse code of one (already scaled) frame as a dense vector.
    fn code(&self, frame: &[f32]) -> Vec<f32> {
        let mut dense = vec![0.0f32; self.cfg.atoms];
        for (a, w) in omp(&self.dict, frame, self.cfg.sparsity) {
            dense[a] = w;
        }
        dense
    }

    /// Predicts per-frame labels for a sequence.
    pub fn predict(&self, frames: &Mat) -> Vec<usize> {
        let scaled = self.scaler.apply(frames);
        let raw: Vec<usize> = scaled.iter_rows().map(|r| self.svm.predict(&self.code(r))).collect();
        if self.cfg.smooth == 0 {
            return raw;
        }
        // Mode filter over a +/- smooth window.
        let k = self.cfg.smooth;
        (0..raw.len())
            .map(|t| {
                let lo = t.saturating_sub(k);
                let hi = (t + k + 1).min(raw.len());
                let mut counts = vec![0usize; self.cfg.classes];
                for &l in &raw[lo..hi] {
                    counts[l] += 1;
                }
                let mut best = raw[t];
                for (c, &n) in counts.iter().enumerate() {
                    if n > counts[best] {
                        best = c;
                    }
                }
                best
            })
            .collect()
    }

    /// Frame-level accuracy on a labeled sequence set.
    pub fn accuracy(&self, data: &[(&Mat, &[usize])]) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (x, y) in data {
            let pred = self.predict(x);
            correct += pred.iter().zip(y.iter()).filter(|(a, b)| a == b).count();
            total += y.len();
        }
        if total == 0 {
            f32::NAN
        } else {
            correct as f32 / total as f32
        }
    }
}

fn normalize_row(row: &mut [f32]) {
    let norm = row.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 1e-8 {
        for x in row {
            *x /= norm;
        }
    } else if let Some(first) = row.first_mut() {
        *first = 1.0;
    }
}

/// Orthogonal matching pursuit: greedily selects up to `sparsity` atoms and
/// re-solves the least-squares coefficients over the selected set. Returns
/// `(atom, coefficient)` pairs.
fn omp(dict: &Mat, x: &[f32], sparsity: usize) -> Vec<(usize, f32)> {
    let atoms = dict.rows();
    let mut residual = x.to_vec();
    let mut selected: Vec<usize> = Vec::new();

    for _ in 0..sparsity.min(atoms) {
        // Atom most correlated with the residual.
        let mut best = None;
        let mut best_abs = 1e-7f32;
        for a in 0..atoms {
            if selected.contains(&a) {
                continue;
            }
            let c: f32 = dict.row(a).iter().zip(residual.iter()).map(|(&d, &r)| d * r).sum();
            if c.abs() > best_abs {
                best_abs = c.abs();
                best = Some(a);
            }
        }
        let Some(a) = best else { break };
        selected.push(a);

        // Least squares over selected atoms: (G)c = b with G = D_s D_s^T.
        let k = selected.len();
        let mut g = vec![0.0f32; k * k];
        let mut b = vec![0.0f32; k];
        for i in 0..k {
            let di = dict.row(selected[i]);
            b[i] = di.iter().zip(x.iter()).map(|(&d, &xv)| d * xv).sum();
            for j in 0..k {
                let dj = dict.row(selected[j]);
                g[i * k + j] = di.iter().zip(dj.iter()).map(|(&a, &b)| a * b).sum();
            }
        }
        let coef = solve_small(&mut g, &mut b, k);

        // Update residual r = x - D_s^T c.
        residual.copy_from_slice(x);
        for (i, &a) in selected.iter().enumerate() {
            for (rv, &dv) in residual.iter_mut().zip(dict.row(a).iter()) {
                *rv -= coef[i] * dv;
            }
        }
    }

    // Final coefficients.
    let k = selected.len();
    if k == 0 {
        return Vec::new();
    }
    let mut g = vec![0.0f32; k * k];
    let mut b = vec![0.0f32; k];
    for i in 0..k {
        let di = dict.row(selected[i]);
        b[i] = di.iter().zip(x.iter()).map(|(&d, &xv)| d * xv).sum();
        for j in 0..k {
            let dj = dict.row(selected[j]);
            g[i * k + j] = di.iter().zip(dj.iter()).map(|(&a, &b)| a * b).sum();
        }
    }
    let coef = solve_small(&mut g, &mut b, k);
    selected.into_iter().zip(coef).collect()
}

/// Gaussian elimination with partial pivoting for tiny systems (k ≤ ~8).
fn solve_small(g: &mut [f32], b: &mut [f32], k: usize) -> Vec<f32> {
    for col in 0..k {
        // Pivot.
        let mut pivot = col;
        for r in col + 1..k {
            if g[r * k + col].abs() > g[pivot * k + col].abs() {
                pivot = r;
            }
        }
        if g[pivot * k + col].abs() < 1e-9 {
            // Singular direction: ridge it.
            g[col * k + col] += 1e-6;
        } else if pivot != col {
            for c in 0..k {
                g.swap(col * k + c, pivot * k + c);
            }
            b.swap(col, pivot);
        }
        let diag = g[col * k + col];
        for r in col + 1..k {
            let f = g[r * k + col] / diag;
            for c in col..k {
                g[r * k + c] -= f * g[col * k + c];
            }
            b[r] -= f * b[col];
        }
    }
    let mut x = vec![0.0f32; k];
    for row in (0..k).rev() {
        let mut acc = b[row];
        for c in row + 1..k {
            acc -= g[row * k + c] * x[c];
        }
        x[row] = acc / g[row * k + row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_sequences(n: usize) -> Vec<(Mat, Vec<usize>)> {
        (0..n)
            .map(|i| {
                let len = 60;
                let mut rows = Vec::new();
                let mut labels = Vec::new();
                for t in 0..len {
                    let phase = (t / 20) % 3;
                    let wiggle = ((t * 13 + i * 7) % 10) as f32 / 20.0;
                    let base = match phase {
                        0 => [2.0 + wiggle, 0.0, -1.0],
                        1 => [0.0, 2.0 - wiggle, 1.0],
                        _ => [-2.0, wiggle, 2.0],
                    };
                    rows.extend_from_slice(&base);
                    labels.push(phase);
                }
                (Mat::from_vec(len, 3, rows), labels)
            })
            .collect()
    }

    #[test]
    fn omp_reconstructs_dictionary_atoms() {
        let dict = Mat::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let code = omp(&dict, &[3.0, 0.0], 1);
        assert_eq!(code.len(), 1);
        assert_eq!(code[0].0, 0);
        assert!((code[0].1 - 3.0).abs() < 1e-5);
    }

    #[test]
    fn omp_respects_sparsity() {
        let dict = Mat::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0], &[0.0, 0.0, 1.0]]);
        let code = omp(&dict, &[1.0, 2.0, 3.0], 2);
        assert!(code.len() <= 2);
    }

    #[test]
    fn solve_small_solves_2x2() {
        let mut g = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve_small(&mut g, &mut b, 2);
        assert!((2.0 * x[0] + x[1] - 5.0).abs() < 1e-4);
        assert!((x[0] + 3.0 * x[1] - 10.0).abs() < 1e-4);
    }

    #[test]
    fn sdsdl_learns_three_phase_toy() {
        let seqs = toy_sequences(4);
        let data: Vec<(&Mat, &[usize])> = seqs.iter().map(|(x, y)| (x, y.as_slice())).collect();
        let cfg = SdsdlConfig { atoms: 8, classes: 3, ..Default::default() };
        let model = Sdsdl::train(&data, &cfg);
        let acc = model.accuracy(&data);
        assert!(acc > 0.85, "train accuracy {acc}");
    }

    #[test]
    fn smoothing_reduces_label_switches() {
        let seqs = toy_sequences(4);
        let data: Vec<(&Mat, &[usize])> = seqs.iter().map(|(x, y)| (x, y.as_slice())).collect();
        let rough = Sdsdl::train(
            &data,
            &SdsdlConfig { atoms: 8, classes: 3, smooth: 0, ..Default::default() },
        );
        let smooth = Sdsdl::train(
            &data,
            &SdsdlConfig { atoms: 8, classes: 3, smooth: 4, ..Default::default() },
        );
        let switches = |pred: &[usize]| pred.windows(2).filter(|w| w[0] != w[1]).count();
        let r = switches(&rough.predict(&seqs[0].0));
        let s = switches(&smooth.predict(&seqs[0].0));
        assert!(s <= r, "smoothing should not add switches ({s} > {r})");
    }
}
