//! Skip-Chain Conditional Random Field gesture segmentation, after
//! Lea et al. [44] ("a variation of the Skip-Chain CRF that can better
//! capture transitions between gestures over longer periods of frames").
//!
//! Structure: linear-chain transitions plus *skip edges* of length `k`
//! connecting frame `t` to `t - k`. Exact inference in skip-chain CRFs is
//! intractable; like common practice we decode with Viterbi over the chain
//! while scoring skip edges against the best-scoring label at `t - k`
//! (a greedy skip approximation). Training is by the structured perceptron.

use crate::scaler::Scaler;
use nn::Mat;
use serde::{Deserialize, Serialize};

/// SC-CRF configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScCrfConfig {
    /// Skip-edge length in frames (Lea et al. sweep ~0.3–1 s).
    pub skip: usize,
    /// Structured-perceptron epochs.
    pub epochs: usize,
    /// Perceptron step size.
    pub lr: f32,
    /// Number of label classes.
    pub classes: usize,
}

impl Default for ScCrfConfig {
    fn default() -> Self {
        Self { skip: 10, epochs: 8, lr: 0.1, classes: gestures::NUM_GESTURES }
    }
}

/// A trained skip-chain CRF.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScCrf {
    cfg: ScCrfConfig,
    scaler: Scaler,
    /// Unary weights, `(classes, dim + 1)` (last column = bias).
    unary: Mat,
    /// Chain transition weights, `(classes, classes)`.
    trans: Mat,
    /// Skip-edge weights, `(classes, classes)`.
    skip_trans: Mat,
}

impl ScCrf {
    /// Trains on `(frames, labels)` sequences.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or a sequence's labels mismatch its frames.
    pub fn train(data: &[(&Mat, &[usize])], cfg: &ScCrfConfig) -> Self {
        assert!(!data.is_empty(), "ScCrf::train: no sequences");
        for (x, y) in data {
            assert_eq!(x.rows(), y.len(), "frames/labels mismatch");
        }
        let scaler = Scaler::fit(data.iter().map(|(x, _)| *x));
        let dim = scaler.dims();
        let mut model = Self {
            cfg: *cfg,
            scaler,
            unary: Mat::zeros(cfg.classes, dim + 1),
            trans: Mat::zeros(cfg.classes, cfg.classes),
            skip_trans: Mat::zeros(cfg.classes, cfg.classes),
        };

        let scaled: Vec<(Mat, &[usize])> =
            data.iter().map(|(x, y)| (model.scaler.apply(x), *y)).collect();

        for _epoch in 0..cfg.epochs {
            for (x, gold) in &scaled {
                let pred = model.viterbi(x);
                model.perceptron_update(x, gold, &pred, cfg.lr);
            }
        }
        model
    }

    fn perceptron_update(&mut self, x: &Mat, gold: &[usize], pred: &[usize], lr: f32) {
        let k = self.cfg.skip;
        for t in 0..x.rows() {
            if gold[t] != pred[t] {
                let row = x.row(t);
                {
                    let w = self.unary.row_mut(gold[t]);
                    for (wi, &xi) in w.iter_mut().zip(row.iter()) {
                        *wi += lr * xi;
                    }
                    w[row.len()] += lr;
                }
                {
                    let w = self.unary.row_mut(pred[t]);
                    for (wi, &xi) in w.iter_mut().zip(row.iter()) {
                        *wi -= lr * xi;
                    }
                    w[row.len()] -= lr;
                }
            }
            if t > 0 && (gold[t] != pred[t] || gold[t - 1] != pred[t - 1]) {
                self.trans[(gold[t - 1], gold[t])] += lr;
                self.trans[(pred[t - 1], pred[t])] -= lr;
            }
            if t >= k && (gold[t] != pred[t] || gold[t - k] != pred[t - k]) {
                self.skip_trans[(gold[t - k], gold[t])] += lr;
                self.skip_trans[(pred[t - k], pred[t])] -= lr;
            }
        }
    }

    fn unary_score(&self, row: &[f32], y: usize) -> f32 {
        let w = self.unary.row(y);
        let mut s = w[row.len()];
        for (&wi, &xi) in w.iter().zip(row.iter()) {
            s += wi * xi;
        }
        s
    }

    /// Viterbi decoding with greedy skip-edge scoring.
    fn viterbi(&self, x: &Mat) -> Vec<usize> {
        let n = x.rows();
        let c = self.cfg.classes;
        let k = self.cfg.skip;
        if n == 0 {
            return Vec::new();
        }
        let mut dp = vec![vec![f32::NEG_INFINITY; c]; n];
        let mut bp = vec![vec![0usize; c]; n];
        let mut best_at: Vec<usize> = vec![0; n];

        for y in 0..c {
            dp[0][y] = self.unary_score(x.row(0), y);
        }
        best_at[0] = argmax(&dp[0]);

        for t in 1..n {
            let row = x.row(t);
            for y in 0..c {
                let mut best_prev = 0usize;
                let mut best_score = f32::NEG_INFINITY;
                for yp in 0..c {
                    let s = dp[t - 1][yp] + self.trans[(yp, y)];
                    if s > best_score {
                        best_score = s;
                        best_prev = yp;
                    }
                }
                let mut score = best_score + self.unary_score(row, y);
                if t >= k {
                    score += self.skip_trans[(best_at[t - k], y)];
                }
                dp[t][y] = score;
                bp[t][y] = best_prev;
            }
            best_at[t] = argmax(&dp[t]);
        }

        // Backtrack.
        let mut out = vec![0usize; n];
        out[n - 1] = argmax(&dp[n - 1]);
        for t in (1..n).rev() {
            out[t - 1] = bp[t][out[t]];
        }
        out
    }

    /// Predicts per-frame labels for a sequence.
    pub fn predict(&self, frames: &Mat) -> Vec<usize> {
        let scaled = self.scaler.apply(frames);
        self.viterbi(&scaled)
    }

    /// Frame-level accuracy on a labeled sequence set.
    pub fn accuracy(&self, data: &[(&Mat, &[usize])]) -> f32 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for (x, y) in data {
            let pred = self.predict(x);
            correct += pred.iter().zip(y.iter()).filter(|(a, b)| a == b).count();
            total += y.len();
        }
        if total == 0 {
            f32::NAN
        } else {
            correct as f32 / total as f32
        }
    }
}

fn argmax(v: &[f32]) -> usize {
    let mut best = 0;
    for (i, &x) in v.iter().enumerate() {
        if x > v[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-phase sequences: phase 0 has feature ~(1, 0), phase 1 ~(0, 1),
    /// with a mid-sequence noisy stretch that transition weights should
    /// smooth over.
    fn toy_sequences(n: usize) -> Vec<(Mat, Vec<usize>)> {
        (0..n)
            .map(|i| {
                let len = 40 + (i % 3) * 10;
                let split = len / 2;
                let mut rows = Vec::new();
                let mut labels = Vec::new();
                for t in 0..len {
                    let phase = usize::from(t >= split);
                    let wiggle = ((t * 13 + i * 7) % 10) as f32 / 30.0;
                    let (a, b) = if phase == 0 { (1.0, wiggle) } else { (wiggle, 1.0) };
                    rows.extend_from_slice(&[a, b]);
                    labels.push(phase);
                }
                (Mat::from_vec(len, 2, rows), labels)
            })
            .collect()
    }

    #[test]
    fn sccrf_learns_two_phase_toy() {
        let seqs = toy_sequences(6);
        let data: Vec<(&Mat, &[usize])> = seqs.iter().map(|(x, y)| (x, y.as_slice())).collect();
        let cfg = ScCrfConfig { classes: 2, skip: 5, epochs: 10, lr: 0.1 };
        let model = ScCrf::train(&data, &cfg);
        let acc = model.accuracy(&data);
        assert!(acc > 0.9, "train accuracy {acc}");
    }

    #[test]
    fn prediction_length_matches_input() {
        let seqs = toy_sequences(2);
        let data: Vec<(&Mat, &[usize])> = seqs.iter().map(|(x, y)| (x, y.as_slice())).collect();
        let model = ScCrf::train(&data, &ScCrfConfig { classes: 2, ..Default::default() });
        assert_eq!(model.predict(&seqs[0].0).len(), seqs[0].0.rows());
    }

    #[test]
    fn transitions_encourage_smooth_segments() {
        let seqs = toy_sequences(6);
        let data: Vec<(&Mat, &[usize])> = seqs.iter().map(|(x, y)| (x, y.as_slice())).collect();
        let cfg = ScCrfConfig { classes: 2, skip: 5, epochs: 10, lr: 0.1 };
        let model = ScCrf::train(&data, &cfg);
        // Prediction changes label at most a few times on a 2-phase stream:
        // the transition weights suppress frame-level flicker.
        let pred = model.predict(&seqs[0].0);
        let switches = pred.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 4, "too many segments: {switches}");
    }

    #[test]
    #[should_panic(expected = "no sequences")]
    fn rejects_empty_training() {
        let _ = ScCrf::train(&[], &ScCrfConfig::default());
    }
}
