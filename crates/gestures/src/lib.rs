//! # `gestures` — surgical operational context
//!
//! The paper's notion of *operational context* is the surgical gesture
//! (surgeme) the surgeon is currently performing (§II, Fig. 2). This crate
//! provides:
//!
//! * the JIGSAWS gesture vocabulary G1–G15 ([`gesture::Gesture`]),
//! * the Table II rubric of gesture-specific errors and their kinematic
//!   fault causes ([`rubric`]),
//! * finite-state Markov-chain task models, estimable from demonstrations
//!   and sampleable for synthetic data generation ([`markov::MarkovChain`]),
//! * the four tasks of Table IV with reference chains matching Fig. 3
//!   ([`task::Task`]).

#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // indexed loops mirror the math in numeric kernels

pub mod gesture;
pub mod markov;
pub mod rubric;
pub mod task;

pub use gesture::{Gesture, ALL_GESTURES, NUM_GESTURES};
pub use markov::MarkovChain;
pub use rubric::{error_modes, has_common_errors, ErrorMode, FaultClass, RUBRIC};
pub use task::{Task, ALL_TASKS};
