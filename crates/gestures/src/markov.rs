//! Finite-state Markov-chain models of surgical tasks (§II, Fig. 3).
//!
//! Each task is a first-order Markov chain over gestures with explicit start
//! and end probabilities. Chains can be estimated from demonstration gesture
//! sequences (as the paper derived Fig. 3a from JIGSAWS) or sampled to
//! generate new synthetic demonstrations.

use crate::gesture::{Gesture, NUM_GESTURES};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Markov chain over the gesture vocabulary.
///
/// Rows of `trans` are source gestures; the column `NUM_GESTURES` ("virtual
/// end state") holds the probability of terminating after that gesture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkovChain {
    /// `start[g]` = probability the first gesture is `g`.
    start: Vec<f32>,
    /// `trans[g][g']` = P(next = g' | current = g); index `NUM_GESTURES` is
    /// the end state.
    trans: Vec<Vec<f32>>,
}

impl MarkovChain {
    /// Creates an empty chain (all probabilities zero). Useful as a builder
    /// target; use [`MarkovChain::set_start`] / [`MarkovChain::set_transition`].
    pub fn empty() -> Self {
        Self {
            start: vec![0.0; NUM_GESTURES],
            trans: vec![vec![0.0; NUM_GESTURES + 1]; NUM_GESTURES],
        }
    }

    /// Sets a start probability.
    pub fn set_start(&mut self, g: Gesture, p: f32) -> &mut Self {
        self.start[g.index()] = p;
        self
    }

    /// Sets a transition probability.
    pub fn set_transition(&mut self, from: Gesture, to: Gesture, p: f32) -> &mut Self {
        self.trans[from.index()][to.index()] = p;
        self
    }

    /// Sets the end-of-task probability after `from`.
    pub fn set_end(&mut self, from: Gesture, p: f32) -> &mut Self {
        self.trans[from.index()][NUM_GESTURES] = p;
        self
    }

    /// Start probability of `g`.
    pub fn start_prob(&self, g: Gesture) -> f32 {
        self.start[g.index()]
    }

    /// Transition probability `from → to`.
    pub fn transition_prob(&self, from: Gesture, to: Gesture) -> f32 {
        self.trans[from.index()][to.index()]
    }

    /// End probability after `from`.
    pub fn end_prob(&self, from: Gesture) -> f32 {
        self.trans[from.index()][NUM_GESTURES]
    }

    /// Gestures with non-zero start or transition mass.
    pub fn support(&self) -> Vec<Gesture> {
        (0..NUM_GESTURES)
            .filter(|&g| {
                self.start[g] > 0.0
                    || self.trans[g].iter().any(|&p| p > 0.0)
                    || self.trans.iter().any(|row| row[g] > 0.0)
            })
            .filter_map(Gesture::from_index)
            .collect()
    }

    /// Checks that start and every supported row are proper distributions
    /// (sum to 1 within `tol`).
    pub fn is_normalized(&self, tol: f32) -> bool {
        let s: f32 = self.start.iter().sum();
        if (s - 1.0).abs() > tol {
            return false;
        }
        for row in &self.trans {
            let sum: f32 = row.iter().sum();
            if sum > 0.0 && (sum - 1.0).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Maximum-likelihood estimation from demonstration gesture sequences
    /// (how the paper derived Fig. 3 from JIGSAWS transcripts).
    ///
    /// # Panics
    ///
    /// Panics if `sequences` is empty or contains an empty sequence.
    pub fn estimate(sequences: &[Vec<Gesture>]) -> Self {
        assert!(!sequences.is_empty(), "need at least one sequence");
        let mut chain = Self::empty();
        let mut start_counts = [0usize; NUM_GESTURES];
        let mut trans_counts = vec![vec![0usize; NUM_GESTURES + 1]; NUM_GESTURES];
        for seq in sequences {
            assert!(!seq.is_empty(), "empty gesture sequence");
            start_counts[seq[0].index()] += 1;
            for w in seq.windows(2) {
                trans_counts[w[0].index()][w[1].index()] += 1;
            }
            trans_counts[seq[seq.len() - 1].index()][NUM_GESTURES] += 1;
        }
        let n = sequences.len() as f32;
        for g in 0..NUM_GESTURES {
            chain.start[g] = start_counts[g] as f32 / n;
            let row_total: usize = trans_counts[g].iter().sum();
            if row_total > 0 {
                for to in 0..=NUM_GESTURES {
                    chain.trans[g][to] = trans_counts[g][to] as f32 / row_total as f32;
                }
            }
        }
        chain
    }

    /// Samples a gesture sequence, truncated at `max_len` if the end state is
    /// not reached earlier.
    ///
    /// # Panics
    ///
    /// Panics if the chain has no start mass.
    pub fn sample(&self, rng: &mut impl Rng, max_len: usize) -> Vec<Gesture> {
        let start_sum: f32 = self.start.iter().sum();
        assert!(start_sum > 0.0, "chain has no start probabilities");
        let mut seq = Vec::new();
        let mut current = sample_index(rng, &self.start).expect("start distribution empty");
        seq.push(Gesture::from_index(current).expect("valid index"));
        while seq.len() < max_len {
            let row = &self.trans[current];
            match sample_index(rng, row) {
                Some(next) if next == NUM_GESTURES => break,
                Some(next) => {
                    seq.push(Gesture::from_index(next).expect("valid index"));
                    current = next;
                }
                // Absorbing row with no mass: stop.
                None => break,
            }
        }
        seq
    }

    /// Log-likelihood of a sequence under the chain (natural log), treating
    /// the final gesture as followed by the end state. Returns `-inf` for
    /// impossible sequences.
    pub fn log_likelihood(&self, seq: &[Gesture]) -> f32 {
        if seq.is_empty() {
            return f32::NEG_INFINITY;
        }
        let mut ll = ln_or_neg_inf(self.start[seq[0].index()]);
        for w in seq.windows(2) {
            ll += ln_or_neg_inf(self.trans[w[0].index()][w[1].index()]);
        }
        ll += ln_or_neg_inf(self.trans[seq[seq.len() - 1].index()][NUM_GESTURES]);
        ll
    }

    /// Per-row L1 distance to another chain, averaged over supported rows;
    /// used by `repro_fig3_markov` to show estimation convergence.
    pub fn l1_distance(&self, other: &MarkovChain) -> f32 {
        let mut total = 0.0f32;
        let mut rows = 0usize;
        let start_d: f32 =
            self.start.iter().zip(other.start.iter()).map(|(a, b)| (a - b).abs()).sum();
        total += start_d;
        rows += 1;
        for g in 0..NUM_GESTURES {
            let sum_a: f32 = self.trans[g].iter().sum();
            let sum_b: f32 = other.trans[g].iter().sum();
            if sum_a > 0.0 || sum_b > 0.0 {
                total += self.trans[g]
                    .iter()
                    .zip(other.trans[g].iter())
                    .map(|(a, b)| (a - b).abs())
                    .sum::<f32>();
                rows += 1;
            }
        }
        total / rows as f32
    }

    /// Renders the chain as `from -> to : prob` lines for non-zero entries.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for g in 0..NUM_GESTURES {
            if self.start[g] > 0.0 {
                out.push_str(&format!("Start -> G{:<3} : {:.2}\n", g + 1, self.start[g]));
            }
        }
        for g in 0..NUM_GESTURES {
            for to in 0..NUM_GESTURES {
                if self.trans[g][to] > 0.0 {
                    out.push_str(&format!(
                        "G{:<2}  -> G{:<3} : {:.2}\n",
                        g + 1,
                        to + 1,
                        self.trans[g][to]
                    ));
                }
            }
            if self.trans[g][NUM_GESTURES] > 0.0 {
                out.push_str(&format!(
                    "G{:<2}  -> End  : {:.2}\n",
                    g + 1,
                    self.trans[g][NUM_GESTURES]
                ));
            }
        }
        out
    }
}

fn ln_or_neg_inf(p: f32) -> f32 {
    if p > 0.0 {
        p.ln()
    } else {
        f32::NEG_INFINITY
    }
}

/// Samples an index from an unnormalized distribution; `None` if all mass is
/// zero.
fn sample_index(rng: &mut impl Rng, weights: &[f32]) -> Option<usize> {
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        return None;
    }
    let mut u = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w <= 0.0 {
            continue;
        }
        if u < w {
            return Some(i);
        }
        u -= w;
    }
    // Floating-point slack: return the last positive-weight index.
    weights.iter().rposition(|&w| w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_recovers_deterministic_sequence() {
        let seqs = vec![
            vec![Gesture::G2, Gesture::G12, Gesture::G6],
            vec![Gesture::G2, Gesture::G12, Gesture::G6],
        ];
        let chain = MarkovChain::estimate(&seqs);
        assert_eq!(chain.start_prob(Gesture::G2), 1.0);
        assert_eq!(chain.transition_prob(Gesture::G2, Gesture::G12), 1.0);
        assert_eq!(chain.end_prob(Gesture::G6), 1.0);
        assert!(chain.is_normalized(1e-6));
    }

    #[test]
    fn sample_respects_deterministic_chain() {
        let chain = Task::BlockTransfer.reference_chain();
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10 {
            let seq = chain.sample(&mut rng, 100);
            assert_eq!(
                seq,
                vec![Gesture::G2, Gesture::G12, Gesture::G6, Gesture::G5, Gesture::G11],
                "Block Transfer must always follow the Fig. 3b sequence"
            );
        }
    }

    #[test]
    fn estimate_converges_to_reference_suturing_chain() {
        let reference = Task::Suturing.reference_chain();
        let mut rng = SmallRng::seed_from_u64(7);
        let seqs: Vec<Vec<Gesture>> = (0..800).map(|_| reference.sample(&mut rng, 60)).collect();
        let estimated = MarkovChain::estimate(&seqs);
        let d = reference.l1_distance(&estimated);
        assert!(d < 0.12, "estimated chain too far from reference: L1 {d}");
    }

    #[test]
    fn log_likelihood_prefers_valid_sequences() {
        let chain = Task::BlockTransfer.reference_chain();
        let valid = vec![Gesture::G2, Gesture::G12, Gesture::G6, Gesture::G5, Gesture::G11];
        let invalid = vec![Gesture::G11, Gesture::G2];
        assert!(chain.log_likelihood(&valid).is_finite());
        assert_eq!(chain.log_likelihood(&invalid), f32::NEG_INFINITY);
        assert_eq!(chain.log_likelihood(&[]), f32::NEG_INFINITY);
    }

    #[test]
    fn sample_truncates_at_max_len() {
        // A chain that never ends: G1 -> G1 forever.
        let mut chain = MarkovChain::empty();
        chain.set_start(Gesture::G1, 1.0);
        chain.set_transition(Gesture::G1, Gesture::G1, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        assert_eq!(chain.sample(&mut rng, 17).len(), 17);
    }

    #[test]
    fn render_lists_all_edges() {
        let chain = Task::BlockTransfer.reference_chain();
        let text = chain.render();
        assert!(text.contains("Start -> G2"));
        assert!(text.contains("G11  -> End"));
    }

    #[test]
    fn support_of_block_transfer_is_five_gestures() {
        let chain = Task::BlockTransfer.reference_chain();
        assert_eq!(chain.support().len(), 5);
    }
}
