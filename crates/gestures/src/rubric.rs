//! The erroneous-gesture rubric of Table II: per-gesture common failure
//! modes and the kinematic fault classes that can cause them.

use crate::gesture::Gesture;
use serde::{Deserialize, Serialize};

/// Kinematic fault class that can cause a gesture-specific error
/// ("Potential Causes (Faults)" column of Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultClass {
    /// Wrong rotation angles of the end-effector.
    WrongRotation,
    /// Wrong Cartesian position of the end-effector.
    WrongCartesianPosition,
    /// Sudden jumps in Cartesian position.
    SuddenJump,
    /// Grasper angle too high (loses grip).
    HighGrasperAngle,
    /// Grasper angle too low (fails to release).
    LowGrasperAngle,
    /// Insufficient pressure applied.
    LowPressure,
}

impl std::fmt::Display for FaultClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            FaultClass::WrongRotation => "wrong rotation angles",
            FaultClass::WrongCartesianPosition => "wrong Cartesian position",
            FaultClass::SuddenJump => "sudden jumps",
            FaultClass::HighGrasperAngle => "high grasper angle",
            FaultClass::LowGrasperAngle => "low grasper angle",
            FaultClass::LowPressure => "low pressure",
        };
        f.write_str(s)
    }
}

/// One row of the Table II rubric: a failure mode observable for a gesture,
/// and the fault classes that can cause it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct ErrorMode {
    /// The gesture this failure mode belongs to.
    pub gesture: Gesture,
    /// Human-readable failure-mode description.
    pub failure_mode: &'static str,
    /// Kinematic fault classes that can manifest as this failure mode.
    pub causes: &'static [FaultClass],
}

use FaultClass::*;

/// The full Table II rubric for the Suturing and Block Transfer tasks.
pub const RUBRIC: &[ErrorMode] = &[
    ErrorMode {
        gesture: Gesture::G1,
        failure_mode: "more than one attempt to reach",
        causes: &[WrongRotation],
    },
    ErrorMode {
        gesture: Gesture::G2,
        failure_mode: "more than one attempt to position",
        causes: &[WrongRotation],
    },
    ErrorMode {
        gesture: Gesture::G3,
        failure_mode:
            "driving with more than one movement / not removing the needle along its curve",
        causes: &[WrongCartesianPosition],
    },
    ErrorMode {
        gesture: Gesture::G4,
        failure_mode: "unintentional needle drop",
        causes: &[WrongCartesianPosition, SuddenJump],
    },
    ErrorMode {
        gesture: Gesture::G4,
        failure_mode: "needle held on needle holder not in view at all times",
        causes: &[WrongCartesianPosition, SuddenJump],
    },
    ErrorMode {
        gesture: Gesture::G5,
        failure_mode: "unintentional needle drop",
        causes: &[HighGrasperAngle],
    },
    ErrorMode {
        gesture: Gesture::G6,
        failure_mode: "needle held on needle holder not in view at all times",
        causes: &[WrongCartesianPosition, SuddenJump],
    },
    ErrorMode {
        gesture: Gesture::G6,
        failure_mode: "unintentional needle drop",
        causes: &[WrongCartesianPosition, SuddenJump],
    },
    ErrorMode {
        gesture: Gesture::G8,
        failure_mode: "uses tissue/instrument for stability / more than one attempt at orienting",
        causes: &[WrongRotation],
    },
    ErrorMode { gesture: Gesture::G9, failure_mode: "knot left loose", causes: &[LowPressure] },
    ErrorMode {
        gesture: Gesture::G11,
        failure_mode: "failure to dropoff",
        causes: &[LowGrasperAngle],
    },
    ErrorMode {
        gesture: Gesture::G12,
        failure_mode: "more than one attempt to reach",
        causes: &[WrongCartesianPosition, SuddenJump],
    },
];

/// All failure modes for `gesture` (empty for gestures like G10 that have no
/// common errors in Table II).
pub fn error_modes(gesture: Gesture) -> Vec<&'static ErrorMode> {
    RUBRIC.iter().filter(|m| m.gesture == gesture).collect()
}

/// Whether Table II lists any common error for `gesture`. The paper notes
/// G10 (and G11/G2/G12 in parts of Table IX) have no common errors or no
/// reaction times.
pub fn has_common_errors(gesture: Gesture) -> bool {
    !error_modes(gesture).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn g10_has_no_common_errors() {
        assert!(!has_common_errors(Gesture::G10));
        assert!(error_modes(Gesture::G10).is_empty());
    }

    #[test]
    fn g4_has_two_failure_modes() {
        assert_eq!(error_modes(Gesture::G4).len(), 2);
    }

    #[test]
    fn grasper_faults_mirror_the_drop_vs_dropoff_asymmetry() {
        // Table II: needle drop is caused by HIGH grasper angle (G5),
        // failure to dropoff by LOW grasper angle (G11).
        assert!(error_modes(Gesture::G5)
            .iter()
            .any(|m| m.causes.contains(&FaultClass::HighGrasperAngle)));
        assert!(error_modes(Gesture::G11)
            .iter()
            .any(|m| m.causes.contains(&FaultClass::LowGrasperAngle)));
    }

    #[test]
    fn every_mode_has_a_cause_and_description() {
        for m in RUBRIC {
            assert!(!m.failure_mode.is_empty());
            assert!(!m.causes.is_empty());
        }
    }

    #[test]
    fn fault_class_display_is_nonempty() {
        for c in [
            WrongRotation,
            WrongCartesianPosition,
            SuddenJump,
            HighGrasperAngle,
            LowGrasperAngle,
            LowPressure,
        ] {
            assert!(!c.to_string().is_empty());
        }
    }
}
