//! The surgical gesture (surgeme) vocabulary of the JIGSAWS dataset,
//! G1–G15 (Table II of the paper; Gao et al. 2014).

use serde::{Deserialize, Serialize};

/// An atomic surgical gesture. The paper's tasks use G1–G12 (G7 does not
/// appear in Suturing); G13–G15 appear in Knot-Tying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Gesture {
    G1,
    G2,
    G3,
    G4,
    G5,
    G6,
    G7,
    G8,
    G9,
    G10,
    G11,
    G12,
    G13,
    G14,
    G15,
}

/// Number of gesture classes (the one-hot output width of the gesture
/// classifier; Equation 2 uses "all gestures from 0 to 14").
pub const NUM_GESTURES: usize = 15;

/// All gestures in index order.
pub const ALL_GESTURES: [Gesture; NUM_GESTURES] = [
    Gesture::G1,
    Gesture::G2,
    Gesture::G3,
    Gesture::G4,
    Gesture::G5,
    Gesture::G6,
    Gesture::G7,
    Gesture::G8,
    Gesture::G9,
    Gesture::G10,
    Gesture::G11,
    Gesture::G12,
    Gesture::G13,
    Gesture::G14,
    Gesture::G15,
];

impl Gesture {
    /// Zero-based class index (G1 → 0, …, G15 → 14).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Gesture for a zero-based class index.
    // lint: hot-path
    pub fn from_index(index: usize) -> Option<Gesture> {
        ALL_GESTURES.get(index).copied()
    }

    /// Parses the JIGSAWS transcription token (`"G1"`, …, `"G15"`).
    pub fn parse(token: &str) -> Option<Gesture> {
        let num: usize = token.strip_prefix('G')?.parse().ok()?;
        if (1..=NUM_GESTURES).contains(&num) {
            Gesture::from_index(num - 1)
        } else {
            None
        }
    }

    /// Human-readable description from the JIGSAWS vocabulary (Table II).
    pub fn description(self) -> &'static str {
        match self {
            Gesture::G1 => "reaching for needle with right hand",
            Gesture::G2 => "positioning needle",
            Gesture::G3 => "pushing needle through the tissue",
            Gesture::G4 => "transferring needle from left to right",
            Gesture::G5 => "moving to center with needle in grip",
            Gesture::G6 => "pulling suture with left hand",
            Gesture::G7 => "pulling suture with right hand",
            Gesture::G8 => "orienting needle",
            Gesture::G9 => "using right hand to help tighten suture",
            Gesture::G10 => "loosening more suture",
            Gesture::G11 => "dropping suture and moving to end points",
            Gesture::G12 => "reaching for needle with left hand",
            Gesture::G13 => "making C loop around right hand",
            Gesture::G14 => "reaching for suture with right hand",
            Gesture::G15 => "pulling suture with both hands",
        }
    }
}

impl std::fmt::Display for Gesture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "G{}", self.index() + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for g in ALL_GESTURES {
            assert_eq!(Gesture::from_index(g.index()), Some(g));
        }
        assert_eq!(Gesture::from_index(NUM_GESTURES), None);
    }

    #[test]
    fn parse_tokens() {
        assert_eq!(Gesture::parse("G1"), Some(Gesture::G1));
        assert_eq!(Gesture::parse("G15"), Some(Gesture::G15));
        assert_eq!(Gesture::parse("G16"), None);
        assert_eq!(Gesture::parse("G0"), None);
        assert_eq!(Gesture::parse("g1"), None);
        assert_eq!(Gesture::parse("X1"), None);
    }

    #[test]
    fn display_matches_jigsaws_tokens() {
        assert_eq!(Gesture::G1.to_string(), "G1");
        assert_eq!(Gesture::G11.to_string(), "G11");
        assert_eq!(Gesture::parse(&Gesture::G9.to_string()), Some(Gesture::G9));
    }

    #[test]
    fn descriptions_are_nonempty_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for g in ALL_GESTURES {
            assert!(!g.description().is_empty());
            assert!(seen.insert(g.description()), "duplicate description for {g}");
        }
    }
}
