//! Surgical tasks and their reference Markov chains (Fig. 3).
//!
//! The Suturing chain encodes the legible structure of Fig. 3a (start mass
//! 0.74/0.21/0.05 on G1/G5/G8, the dominant G1→G2→G3→G6→G4 loop, rare G10
//! entered from G6 with 1% and from G4 with 13% as §V-A reports); Block
//! Transfer is the deterministic Fig. 3b/Fig. 8 sequence
//! G2→G12→G6→G5→G11. Knot-Tying and Needle-Passing chains follow the
//! JIGSAWS grammars at the same level of fidelity.

use crate::gesture::Gesture;
use crate::markov::MarkovChain;
use serde::{Deserialize, Serialize};

/// A dry-lab surgical training task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    /// FLS Suturing (JIGSAWS, evaluated on the dVRK in the paper).
    Suturing,
    /// JIGSAWS Knot-Tying.
    KnotTying,
    /// JIGSAWS Needle-Passing.
    NeedlePassing,
    /// FLS Block Transfer (evaluated on the Raven II simulator).
    BlockTransfer,
}

/// All tasks in Table IV order.
pub const ALL_TASKS: [Task; 4] =
    [Task::Suturing, Task::KnotTying, Task::NeedlePassing, Task::BlockTransfer];

impl Task {
    /// The gesture vocabulary of the task.
    pub fn gestures(self) -> &'static [Gesture] {
        use Gesture::*;
        match self {
            Task::Suturing => &[G1, G2, G3, G4, G5, G6, G8, G9, G10, G11],
            Task::KnotTying => &[G1, G11, G12, G13, G14, G15],
            Task::NeedlePassing => &[G1, G2, G3, G4, G5, G6, G8, G11],
            Task::BlockTransfer => &[G2, G5, G6, G11, G12],
        }
    }

    /// Reference Markov chain used to generate synthetic demonstrations.
    pub fn reference_chain(self) -> MarkovChain {
        use Gesture::*;
        let mut c = MarkovChain::empty();
        match self {
            Task::Suturing => {
                c.set_start(G1, 0.74).set_start(G5, 0.21).set_start(G8, 0.05);
                c.set_transition(G1, G2, 0.97).set_transition(G1, G8, 0.03);
                c.set_transition(G2, G3, 0.96)
                    .set_transition(G2, G8, 0.02)
                    .set_transition(G2, G6, 0.01)
                    .set_end(G2, 0.01);
                c.set_transition(G3, G6, 0.93)
                    .set_transition(G3, G4, 0.05)
                    .set_transition(G3, G2, 0.01)
                    .set_transition(G3, G11, 0.01);
                c.set_transition(G4, G2, 0.62)
                    .set_transition(G4, G8, 0.22)
                    .set_transition(G4, G10, 0.13)
                    .set_transition(G4, G11, 0.03);
                c.set_transition(G5, G2, 0.92).set_transition(G5, G8, 0.08);
                c.set_transition(G6, G4, 0.76)
                    .set_transition(G6, G9, 0.08)
                    .set_transition(G6, G2, 0.08)
                    .set_transition(G6, G11, 0.05)
                    .set_transition(G6, G10, 0.01)
                    .set_end(G6, 0.02);
                c.set_transition(G8, G2, 0.67)
                    .set_transition(G8, G3, 0.17)
                    .set_transition(G8, G6, 0.08)
                    .set_transition(G8, G5, 0.08);
                c.set_transition(G9, G11, 0.50).set_transition(G9, G10, 0.50);
                c.set_transition(G10, G6, 1.00);
                c.set_transition(G11, G1, 0.11).set_end(G11, 0.89);
            }
            Task::KnotTying => {
                c.set_start(G1, 0.85).set_start(G12, 0.15);
                c.set_transition(G1, G13, 0.90).set_transition(G1, G12, 0.10);
                c.set_transition(G12, G13, 1.0);
                c.set_transition(G13, G14, 0.95).set_transition(G13, G15, 0.05);
                c.set_transition(G14, G15, 1.0);
                c.set_transition(G15, G13, 0.55).set_transition(G15, G11, 0.35).set_end(G15, 0.10);
                c.set_transition(G11, G13, 0.10).set_end(G11, 0.90);
            }
            Task::NeedlePassing => {
                c.set_start(G1, 0.80).set_start(G5, 0.15).set_start(G8, 0.05);
                c.set_transition(G1, G2, 0.90).set_transition(G1, G5, 0.10);
                c.set_transition(G2, G3, 0.90).set_transition(G2, G8, 0.10);
                c.set_transition(G3, G6, 0.85)
                    .set_transition(G3, G4, 0.10)
                    .set_transition(G3, G2, 0.05);
                c.set_transition(G4, G2, 0.70)
                    .set_transition(G4, G8, 0.20)
                    .set_transition(G4, G11, 0.10);
                c.set_transition(G5, G2, 0.90).set_transition(G5, G8, 0.10);
                c.set_transition(G6, G4, 0.70)
                    .set_transition(G6, G2, 0.15)
                    .set_transition(G6, G11, 0.13)
                    .set_end(G6, 0.02);
                c.set_transition(G8, G2, 0.80).set_transition(G8, G3, 0.20);
                c.set_transition(G11, G1, 0.15).set_end(G11, 0.85);
            }
            Task::BlockTransfer => {
                c.set_start(G2, 1.0);
                c.set_transition(G2, G12, 1.0);
                c.set_transition(G12, G6, 1.0);
                c.set_transition(G6, G5, 1.0);
                c.set_transition(G5, G11, 1.0);
                c.set_end(G11, 1.0);
            }
        }
        c
    }

    /// Native sampling rate of the task's data source: 30 Hz for the
    /// JIGSAWS/dVRK tasks, 1 kHz for the Raven II simulator (§IV).
    pub fn native_hz(self) -> f32 {
        match self {
            Task::BlockTransfer => 1000.0,
            _ => 30.0,
        }
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Task::Suturing => "Suturing",
            Task::KnotTying => "Knot Tying",
            Task::NeedlePassing => "Needle Passing",
            Task::BlockTransfer => "Block Transfer",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn every_reference_chain_is_normalized() {
        for task in ALL_TASKS {
            assert!(task.reference_chain().is_normalized(1e-4), "{task} chain not normalized");
        }
    }

    #[test]
    fn chains_only_use_the_task_vocabulary() {
        for task in ALL_TASKS {
            let vocab: std::collections::HashSet<_> = task.gestures().iter().copied().collect();
            for g in task.reference_chain().support() {
                assert!(vocab.contains(&g), "{task} chain uses {g} outside its vocabulary");
            }
        }
    }

    #[test]
    fn sampled_sequences_stay_in_vocabulary() {
        let mut rng = SmallRng::seed_from_u64(3);
        for task in ALL_TASKS {
            let chain = task.reference_chain();
            let vocab: std::collections::HashSet<_> = task.gestures().iter().copied().collect();
            for _ in 0..50 {
                for g in chain.sample(&mut rng, 80) {
                    assert!(vocab.contains(&g));
                }
            }
        }
    }

    #[test]
    fn suturing_g10_is_rare_as_in_the_paper() {
        // §V-A: G10 has 1% transition probability from G6 and 13% from G4.
        let c = Task::Suturing.reference_chain();
        assert!((c.transition_prob(Gesture::G6, Gesture::G10) - 0.01).abs() < 1e-6);
        assert!((c.transition_prob(Gesture::G4, Gesture::G10) - 0.13).abs() < 1e-6);
    }

    #[test]
    fn suturing_start_probabilities_match_fig3a() {
        let c = Task::Suturing.reference_chain();
        assert!((c.start_prob(Gesture::G1) - 0.74).abs() < 1e-6);
        assert!((c.start_prob(Gesture::G5) - 0.21).abs() < 1e-6);
        assert!((c.start_prob(Gesture::G8) - 0.05).abs() < 1e-6);
    }

    #[test]
    fn native_rates_match_the_platforms() {
        assert_eq!(Task::Suturing.native_hz(), 30.0);
        assert_eq!(Task::BlockTransfer.native_hz(), 1000.0);
    }

    #[test]
    fn task_display_nonempty() {
        for t in ALL_TASKS {
            assert!(!t.to_string().is_empty());
        }
    }
}
