//! # `context-monitor-suite`
//!
//! Umbrella crate for the reproduction of *"Real-Time Context-aware
//! Detection of Unsafe Events in Robot-Assisted Surgery"* (Yasar &
//! Alemzadeh, DSN 2020). It re-exports every workspace crate, hosts the
//! runnable examples (`examples/`), and the cross-crate integration tests
//! (`tests/`).
//!
//! See `README.md` for the map of the workspace and `DESIGN.md` for the
//! paper-to-code inventory.

pub use baselines;
pub use context_monitor;
pub use eval;
pub use faults;
pub use gestures;
pub use jigsaws;
pub use kinematics;
pub use nn;
pub use raven_sim;
pub use reactor;
pub use vision;
