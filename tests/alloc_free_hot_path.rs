//! Proves the acceptance criterion "no per-window heap allocation in the
//! steady-state hot path" by counting real allocator calls around
//! `SafetyMonitor::push` after warm-up — around the closed-loop
//! reactor's per-tick `apply` + `observe` path, measured with its
//! mitigation engaged (the worst case: alert bookkeeping plus command
//! gating on every tick) — and around the **pooled** reactor tick
//! (gate apply → pool submit → barrier drain → decision routing), where
//! the counting allocator also observes the shard worker thread.
//!
//! This file must contain exactly one test: the counting allocator is
//! process-global, and a concurrently running test would pollute the count.

use context_monitor::serve::{Decision, ServeConfig, ShardedMonitorPool};
use context_monitor::{ContextMode, MonitorConfig, Precision, SafetyMonitor, TrainedPipeline};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::{FeatureSet, Vec3};
use raven_sim::{ArmCommand, CommandFilter, Commands};
use reactor::{MitigationPolicy, PooledReactor, ReactorConfig, SafetyReactor};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicBool = AtomicBool::new(false);

// SAFETY: every method forwards to the `System` allocator with arguments
// unchanged; the counter update has no effect on the returned memory, so
// `System`'s GlobalAlloc guarantees carry over verbatim.
unsafe impl GlobalAlloc for CountingAllocator {
    // SAFETY: see the impl-level comment — pure pass-through to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: forwarding the caller's layout unchanged to the system
        // allocator upholds the same contract we were called under.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: see the impl-level comment — pure pass-through to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` came from our `alloc`, which forwarded to
        // `System`, so they are valid for `System.dealloc`.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: see the impl-level comment — pure pass-through to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `ptr`/`layout` came from our `alloc` (backed by `System`),
        // and `new_size` is forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn steady_state_monitor_push_performs_no_heap_allocation() {
    // Part 0: the kernel layer itself. Backend resolution (env read +
    // dispatch-table install) and the 64-byte-aligned packing scratch both
    // allocate only on first use; a warmed GEMM call must not touch the
    // allocator on any backend this host offers.
    let label = nn::kernels::gemm_backend_label(); // resolves dispatch now
    let mut backends = vec![nn::GemmIsa::Scalar];
    backends.extend(nn::kernels::simd_isa());
    // Pipeline shapes plus one n > NC product so the packed-panel path
    // (scratch growth) is warmed and measured too.
    let shapes = [(15usize, 38usize, 192usize), (6, 40, 600)];
    let mut scratch = nn::GemmScratch::default();
    let max = |f: &dyn Fn(&(usize, usize, usize)) -> usize| shapes.iter().map(f).max().unwrap();
    let a = vec![0.5f32; max(&|&(m, k, _)| m * k)];
    let b = vec![0.25f32; max(&|&(_, k, n)| k * n)];
    let bt = vec![0.25f32; max(&|&(_, k, n)| n * k)];
    let at = vec![0.5f32; max(&|&(m, k, _)| k * m)];
    let mut out = vec![0.0f32; max(&|&(m, _, n)| m * n)];
    let mut kernel_pass = || {
        for &isa in &backends {
            for &(m, k, n) in &shapes {
                nn::kernels::gemm_ab_with(
                    isa,
                    m,
                    k,
                    n,
                    &a[..m * k],
                    &b[..k * n],
                    &mut out[..m * n],
                    &mut scratch,
                );
                nn::kernels::gemm_abt_with(
                    isa,
                    m,
                    k,
                    n,
                    &a[..m * k],
                    &bt[..n * k],
                    &mut out[..m * n],
                    &mut scratch,
                );
                nn::kernels::gemm_atb_with(
                    isa,
                    m,
                    k,
                    n,
                    &at[..k * m],
                    &b[..k * n],
                    &mut out[..m * n],
                    &mut scratch,
                );
            }
        }
    };
    kernel_pass(); // warm-up: scratch high-water mark + dispatch resolution
    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    kernel_pass();
    COUNTING.store(false, Ordering::SeqCst);
    let kernel_allocs = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        kernel_allocs, 0,
        "warmed GEMM calls (backend {label}) allocated {kernel_allocs} times"
    );

    let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(17));
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(9);
    cfg.train.epochs = 2;
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    let pipeline = TrainedPipeline::train(&ds, &idx, &cfg);

    // Inference scratch lives in the engine (not the shared networks) since
    // the sharded-serving refactor, and the error classifiers share one
    // architecture, so the monitor warm-up below sizes every buffer the
    // measured phase can touch — even when routing switches classifiers
    // mid-stream, the scratch shapes are identical and nothing reallocates.
    let demo = &ds.demos[0];
    let warm = cfg.window.width.max(cfg.gesture_window);
    let measured = 64usize;
    assert!(demo.len() > warm + 2 * measured, "demo too short for a steady-state measurement");

    let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
    // Warm-up: fill the windows, the smoothing filter, and every scratch
    // buffer along the per-frame path.
    for frame in demo.frames.iter().take(warm + measured) {
        let _ = monitor.push(frame);
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut emitted = 0usize;
    let mut score_acc = 0.0f32;
    for frame in demo.frames.iter().skip(warm + measured).take(measured) {
        if let Ok(Some(out)) = monitor.push(frame) {
            emitted += 1;
            score_acc += out.unsafe_probability;
        }
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(emitted, measured, "monitor should be warm throughout");
    assert!(score_acc.is_finite());
    assert_eq!(
        allocations, 0,
        "steady-state push allocated {allocations} times over {measured} frames"
    );

    // Part 2: the closed-loop reactor's per-tick path. A threshold of 1e-6
    // alerts on every warm frame, so by the end of warm-up the mitigation
    // has engaged and the measured phase covers the full worst case:
    // engine step + alert bookkeeping + gated command stream.
    let pipeline = Arc::new(monitor.into_pipeline());
    let mut reactor = SafetyReactor::new(
        Arc::clone(&pipeline),
        ReactorConfig {
            threshold: 1e-6,
            policy: MitigationPolicy::StopAndHold,
            ..ReactorConfig::default()
        },
    );
    // A moving setpoint, so a gated tick is distinguishable from a
    // pass-through tick (the hold freezes an *earlier* plan point).
    let plan = |p: f32| {
        let arm = ArmCommand {
            position: Vec3::new(10.0 * p, -5.0 * p, 20.0),
            grasper: 0.12,
            euler: (0.0, 0.0, 0.0),
        };
        Commands { arms: [arm, arm] }
    };
    let n = demo.len() as f32 - 1.0;
    for (t, frame) in demo.frames.iter().enumerate().take(warm + measured) {
        let mut cmds = plan(t as f32 / n);
        reactor.apply(t, t as f32 / n, &mut cmds);
        reactor.observe(t, frame);
    }
    assert!(reactor.engaged_tick().is_some(), "mitigation must be engaged before measuring");
    assert!(reactor.ticks_gated() > 0);

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut gated = 0usize;
    for (t, frame) in demo.frames.iter().enumerate().skip(warm + measured).take(measured) {
        let mut cmds = plan(t as f32 / n);
        reactor.apply(t, t as f32 / n, &mut cmds);
        reactor.observe(t, frame);
        gated += (cmds != plan(t as f32 / n)) as usize;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(gated, measured, "stop-and-hold should gate every measured tick");
    assert_eq!(
        allocations, 0,
        "steady-state reactor tick allocated {allocations} times over {measured} ticks"
    );

    // Part 3: the pooled reactor tick — the fleet deployment shape. Each
    // tick: gate apply (mitigation engaged, worst case) → pool submit
    // (recycled frame buffer) → barrier drain into a reused buffer →
    // decision routing into the gate. The allocator is process-global, so
    // the shard worker's micro-batched forward pass is measured too; the
    // whole loop must be allocation-free once warm.
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::clone(&pipeline),
        ContextMode::Predicted,
        ServeConfig { workers: 1, threshold: 0.5, precision: Precision::F32 },
        1,
    );
    let mut gate = PooledReactor::new(
        ReactorConfig {
            threshold: 1e-6,
            policy: MitigationPolicy::StopAndHold,
            ..ReactorConfig::default()
        },
        0,
    )
    .expect("valid config");
    let mut decisions: Vec<Decision> = Vec::new();
    let mut tick = |t: usize, gate: &mut PooledReactor, pool: &mut ShardedMonitorPool| {
        let mut cmds = plan(t as f32 / n);
        gate.apply(t, t as f32 / n, &mut cmds);
        pool.submit(0, &demo.frames[t]).expect("Predicted mode");
        decisions.clear();
        pool.flush_into(&mut decisions);
        for d in &decisions {
            gate.on_decision(d);
        }
        cmds
    };
    for t in 0..warm + measured {
        let _ = tick(t, &mut gate, &mut pool);
    }
    assert!(gate.gate().engaged_tick().is_some(), "mitigation engaged before measuring");
    assert_eq!(gate.deadline_misses(), 0, "barrier drain never misses");

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut gated = 0usize;
    for t in warm + measured..warm + 2 * measured {
        let cmds = tick(t, &mut gate, &mut pool);
        gated += (cmds != plan(t as f32 / n)) as usize;
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(gated, measured, "pooled stop-and-hold should gate every measured tick");
    assert_eq!(
        allocations, 0,
        "steady-state pooled reactor tick allocated {allocations} times over {measured} ticks"
    );

    // Part 4: the quantized tier. The same pooled loop on Precision::Int8 —
    // per-tick activation quantization, i8 im2col patches, and i32
    // accumulators all live in high-water QuantScratch buffers, so the warm
    // int8 path must be exactly as allocation-free as f32.
    drop(pool);
    drop(reactor);
    let mut pipeline = Arc::try_unwrap(pipeline).ok().expect("pool workers joined");
    pipeline.quantize(&ds, &idx).expect("built-in specs are quantizable");
    let pipeline = Arc::new(pipeline);
    let mut pool = ShardedMonitorPool::with_sessions(
        Arc::clone(&pipeline),
        ContextMode::Predicted,
        ServeConfig { workers: 1, threshold: 0.5, precision: Precision::Int8 },
        1,
    );
    let mut q_tick = |t: usize, pool: &mut ShardedMonitorPool| {
        pool.submit(0, &demo.frames[t]).expect("Predicted mode");
        decisions.clear();
        pool.flush_into(&mut decisions);
        decisions.iter().filter(|d| d.output.is_some()).count()
    };
    for t in 0..warm + measured {
        let _ = q_tick(t, &mut pool);
    }

    ALLOCATIONS.store(0, Ordering::SeqCst);
    COUNTING.store(true, Ordering::SeqCst);
    let mut emitted = 0usize;
    for t in warm + measured..warm + 2 * measured {
        emitted += q_tick(t, &mut pool);
    }
    COUNTING.store(false, Ordering::SeqCst);
    let allocations = ALLOCATIONS.load(Ordering::SeqCst);

    assert_eq!(emitted, measured, "int8 pool should be warm throughout");
    assert_eq!(
        allocations, 0,
        "steady-state int8 pooled tick allocated {allocations} times over {measured} ticks"
    );
}
