//! End-to-end integration test: the dVRK/Suturing path of the paper.
//!
//! Generates synthetic JIGSAWS-like data, trains the two-stage pipeline on
//! a LOSO fold, and checks the paper's headline qualitative claims: the
//! monitor detects unsafe events with above-chance AUC, the perfect-boundary
//! upper bound is at least as good as predicted context, and the streaming
//! monitor agrees with the offline evaluation.

use context_monitor::{
    evaluate_pipeline, ContextMode, MonitorConfig, SafetyMonitor, TrainedPipeline,
};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::FeatureSet;

fn setup() -> (kinematics::Dataset, kinematics::Fold, MonitorConfig) {
    let dataset = generate(
        &GeneratorConfig {
            num_demos: 15,
            duration_scale: 0.4,
            max_gestures: 12,
            ..GeneratorConfig::new(Task::Suturing)
        }
        .with_seed(1234),
    );
    let fold = dataset.loso_folds().into_iter().next().expect("a fold");
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(1234);
    cfg.train.epochs = 10;
    cfg.train_stride = 3;
    (dataset, fold, cfg)
}

#[test]
fn monitor_detects_unsafe_events_above_chance() {
    let (dataset, fold, cfg) = setup();
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);

    let perfect = evaluate_pipeline(&pipeline, &dataset, &fold.test, ContextMode::Perfect);
    let auc = perfect.auc_summary();
    assert!(auc.n > 0, "no demo with a defined AUC");
    assert!(auc.mean > 0.65, "perfect-boundary AUC {} should be clearly above chance", auc.mean);

    let predicted = evaluate_pipeline(&pipeline, &dataset, &fold.test, ContextMode::Predicted);
    // Upper bound property (Table VIII): perfect boundaries >= predicted,
    // with slack for the small fast-scale models.
    assert!(
        auc.mean >= predicted.auc_summary().mean - 0.08,
        "perfect {} should not be clearly worse than predicted {}",
        auc.mean,
        predicted.auc_summary().mean
    );
}

#[test]
fn pipeline_reports_timeliness_metrics() {
    let (dataset, fold, cfg) = setup();
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);
    let eval = evaluate_pipeline(&pipeline, &dataset, &fold.test, ContextMode::Perfect);

    let events: usize = eval.demos.iter().map(|d| d.events).sum();
    let detected: usize = eval.demos.iter().map(|d| d.reaction_ms.len()).sum();
    assert!(events > 0, "test fold should contain annotated errors");
    assert!(
        detected * 2 >= events,
        "at least half of the {events} error events should be detected, got {detected}"
    );
    assert!(eval.compute_ms().is_finite() && eval.compute_ms() > 0.0);
    // Reaction times exist and are finite.
    let summary = eval.reaction_summary();
    assert!(summary.n == detected);
    assert!(summary.mean.is_finite());
}

#[test]
fn streaming_and_offline_agree_end_to_end() {
    let (dataset, fold, cfg) = setup();
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);
    let demo = &dataset.demos[fold.test[0]];
    let offline = pipeline.run_demo(demo, ContextMode::Predicted);

    let warm = cfg.window.width.max(cfg.gesture_window);
    let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
    let mut online = Vec::new();
    for frame in &demo.frames {
        if let Some(out) = monitor.push(frame).expect("Predicted mode cannot fail") {
            online.push((out.gesture.index(), out.alert));
        }
    }
    assert_eq!(online.len(), demo.len() - warm + 1);
    for (t, (g, alert)) in online.iter().enumerate() {
        let pos = warm - 1 + t;
        assert_eq!(*g, offline.gesture_pred[pos], "gesture mismatch at frame {pos}");
        assert_eq!(*alert, offline.unsafe_pred[pos], "alert mismatch at frame {pos}");
    }
}

#[test]
fn loso_folds_do_not_leak_demonstrations() {
    let (dataset, _, _) = setup();
    for fold in dataset.loso_folds() {
        for i in &fold.test {
            assert!(!fold.train.contains(i), "demo {i} in both train and test");
            // Every test demo's supertrial equals the fold's held-out one.
            assert_eq!(dataset.demos[*i].supertrial, fold.supertrial);
        }
    }
}
