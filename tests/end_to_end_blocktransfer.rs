//! End-to-end integration test: the Raven II/Block Transfer path —
//! simulator → fault injection → labeled dataset → monitor → detection,
//! with the vision pipeline as the orthogonal labeling cross-check.

use context_monitor::{evaluate_pipeline, ContextMode, MonitorConfig, TrainedPipeline};
use faults::{
    build_block_transfer_dataset, run_injection, sample_spec, table3_grid, BlockTransferDataConfig,
};
use gestures::Gesture;
use kinematics::FeatureSet;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use raven_sim::{run_block_transfer, NoFaults, SimConfig};
use vision::{label_trial, reference_trace, VisionConfig};

fn sim() -> SimConfig {
    SimConfig { hz: 50.0, duration_s: 5.0, seed: 0, tremor: 0.3 }
}

fn cfg() -> MonitorConfig {
    let mut cfg = MonitorConfig::fast(FeatureSet::CG).with_seed(77).with_window(10, 1);
    cfg.train.epochs = 8;
    cfg.train_stride = 3;
    cfg
}

#[test]
fn block_transfer_monitor_detects_injected_faults() {
    let dataset = build_block_transfer_dataset(&BlockTransferDataConfig {
        fault_free: 6,
        faulty: 18,
        sim: sim(),
        seed: 777,
    });
    dataset.validate().expect("valid dataset");
    let fold = dataset.loso_folds().into_iter().next().expect("fold");
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg());

    let eval = evaluate_pipeline(&pipeline, &dataset, &fold.test, ContextMode::Perfect);
    let auc = eval.auc_summary();
    assert!(auc.n > 0);
    assert!(auc.mean > 0.6, "Block Transfer AUC {} too low", auc.mean);
}

#[test]
fn gesture_classifier_nails_the_deterministic_block_transfer_grammar() {
    // Fig. 3b: Block Transfer always follows G2->G12->G6->G5->G11, so the
    // gesture classifier should reach very high accuracy (paper: 95.16%).
    let dataset = build_block_transfer_dataset(&BlockTransferDataConfig {
        fault_free: 8,
        faulty: 8,
        sim: sim(),
        seed: 778,
    });
    let fold = dataset.loso_folds().into_iter().next().expect("fold");
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg());

    let mut correct = 0usize;
    let mut total = 0usize;
    for &i in &fold.test {
        let demo = &dataset.demos[i];
        let run = pipeline.run_demo(demo, ContextMode::Predicted);
        correct += run
            .gesture_pred
            .iter()
            .zip(demo.gesture_indices().iter())
            .filter(|(a, b)| a == b)
            .count();
        total += demo.len();
    }
    let acc = correct as f32 / total as f32;
    assert!(acc > 0.85, "Block Transfer gesture accuracy {acc} (paper: 0.95)");
}

#[test]
fn vision_labeling_agrees_with_simulator_ground_truth() {
    let vcfg = VisionConfig::default();
    let reference = reference_trace(
        &run_block_transfer(&SimConfig { seed: 70, ..sim() }, &mut NoFaults),
        &vcfg,
    );
    let grid = table3_grid();
    let mut rng = SmallRng::seed_from_u64(779);
    let mut agree = 0usize;
    let n = 16usize;
    for k in 0..n {
        let spec = sample_spec(&grid[(k * 3) % grid.len()], &mut rng);
        let (trial, _) = run_injection(&SimConfig { seed: 3000 + k as u64, ..sim() }, spec);
        let verdict = label_trial(&trial, &reference, &vcfg);
        agree += (verdict.failure == trial.outcome.failure) as usize;
    }
    assert!(agree * 10 >= n * 8, "vision agreed on only {agree}/{n} injections");
}

#[test]
fn faulty_dataset_errors_sit_on_late_gestures() {
    // Faults are injected in the carry/release phase, so annotated errors
    // should cluster on G5/G6/G11 (Table VII bottom block).
    let dataset = build_block_transfer_dataset(&BlockTransferDataConfig {
        fault_free: 2,
        faulty: 20,
        sim: sim(),
        seed: 780,
    });
    let mut late = 0usize;
    let mut total = 0usize;
    for d in &dataset.demos {
        for e in &d.errors {
            total += 1;
            late += matches!(e.gesture, Gesture::G5 | Gesture::G6 | Gesture::G11) as usize;
        }
    }
    assert!(total > 5, "expected annotated errors, got {total}");
    assert!(late * 3 >= total * 2, "late-gesture errors {late}/{total}");
}
