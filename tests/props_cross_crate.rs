//! Property-based integration tests spanning crates: format roundtrips,
//! online/offline window equivalence, streaming/replay engine agreement,
//! metric invariants on generated data.

use context_monitor::{ContextMode, MonitorConfig, MonitorPool, SafetyMonitor, TrainedPipeline};
use eval::{auc, js_discrete, segments};
use gestures::{Gesture, MarkovChain, Task, ALL_TASKS};
use jigsaws::{generate, GeneratorConfig};
use kinematics::jigsaws_io::{
    format_kinematics, format_transcription, parse_kinematics, parse_transcription,
};
use kinematics::{FeatureSet, SlidingWindow, WindowConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A generated demonstration survives the JIGSAWS text roundtrip:
    /// kinematics within float-print precision, transcription exactly.
    #[test]
    fn jigsaws_text_roundtrip(seed in 0u64..500) {
        let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_demos(1).with_seed(seed));
        let demo = &ds.demos[0];

        let ktext = format_kinematics(&demo.frames);
        let frames = parse_kinematics(&ktext, demo.manipulators()).unwrap();
        prop_assert_eq!(frames.len(), demo.len());
        for (a, b) in demo.frames.iter().zip(frames.iter()) {
            let va = a.to_vec();
            let vb = b.to_vec();
            for (x, y) in va.iter().zip(vb.iter()) {
                prop_assert!((x - y).abs() <= 1e-4_f32.max(x.abs() * 1e-5));
            }
        }

        let ttext = format_transcription(&demo.gestures);
        let labels = parse_transcription(&ttext, demo.len()).unwrap();
        prop_assert_eq!(&labels, &demo.gestures);
    }

    /// The streaming window buffer reproduces offline windowing exactly for
    /// arbitrary shapes.
    #[test]
    fn sliding_window_matches_offline(
        rows in 6usize..40,
        cols in 1usize..8,
        width in 2usize..6,
    ) {
        let data: Vec<f32> = (0..rows * cols).map(|i| (i as f32 * 0.37).sin()).collect();
        let m = nn::Mat::from_vec(rows, cols, data);
        let offline = kinematics::windows_with_positions(&m, WindowConfig::new(width, 1));
        let mut sw = SlidingWindow::new(width, cols);
        let mut online = Vec::new();
        for r in 0..rows {
            if let Some(w) = sw.push(m.row(r)) {
                online.push((w.clone(), r));
            }
        }
        prop_assert_eq!(offline, online);
    }

    /// Markov-chain sampling stays within each task's vocabulary and
    /// re-estimation from samples yields a normalized chain.
    #[test]
    fn markov_sample_estimate_invariants(seed in 0u64..300, task_idx in 0usize..4) {
        let task = ALL_TASKS[task_idx];
        let chain = task.reference_chain();
        let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(seed);
        let seqs: Vec<Vec<Gesture>> = (0..20).map(|_| chain.sample(&mut rng, 40)).collect();
        let vocab: std::collections::HashSet<_> = task.gestures().iter().copied().collect();
        for s in &seqs {
            prop_assert!(!s.is_empty());
            for g in s {
                prop_assert!(vocab.contains(g));
            }
        }
        let estimated = MarkovChain::estimate(&seqs);
        prop_assert!(estimated.is_normalized(1e-4));
    }

    /// AUC is flip-symmetric: negating scores and labels gives 1 - AUC.
    #[test]
    fn auc_flip_symmetry(scores in prop::collection::vec(0.0f32..1.0, 8..40)) {
        let labels: Vec<bool> = scores.iter().enumerate().map(|(i, _)| i % 3 == 0).collect();
        if let Some(a) = auc(&scores, &labels) {
            let neg: Vec<f32> = scores.iter().map(|s| -s).collect();
            let flipped: Vec<bool> = labels.iter().map(|l| !l).collect();
            let b = auc(&neg, &flipped).unwrap();
            prop_assert!((a - b).abs() < 1e-5, "auc {} vs flipped {}", a, b);
        }
    }

    /// JS divergence between arbitrary discrete distributions is symmetric
    /// and within [0, ln 2].
    #[test]
    fn js_divergence_bounds(raw_p in prop::collection::vec(0.01f32..1.0, 4), raw_q in prop::collection::vec(0.01f32..1.0, 4)) {
        let norm = |v: &[f32]| {
            let s: f32 = v.iter().sum();
            v.iter().map(|x| x / s).collect::<Vec<_>>()
        };
        let p = norm(&raw_p);
        let q = norm(&raw_q);
        let d = js_discrete(&p, &q);
        prop_assert!(d >= -1e-6);
        prop_assert!(d <= std::f32::consts::LN_2 + 1e-5);
        prop_assert!((d - js_discrete(&q, &p)).abs() < 1e-5);
    }

    /// Segments partition any label stream: contiguous, non-overlapping,
    /// covering, and label-alternating.
    #[test]
    fn segments_partition_streams(labels in prop::collection::vec(0usize..4, 1..80)) {
        let segs = segments(&labels);
        prop_assert_eq!(segs.first().unwrap().start, 0);
        prop_assert_eq!(segs.last().unwrap().end, labels.len());
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
            prop_assert_ne!(w[0].label, w[1].label);
        }
        for s in &segs {
            for (t, &l) in labels.iter().enumerate().take(s.end).skip(s.start) {
                prop_assert_eq!(l, s.label, "frame {}", t);
            }
        }
    }

    /// Feature extraction width always matches the feature-set arithmetic.
    #[test]
    fn feature_dims_are_consistent(seed in 0u64..200) {
        let ds = generate(&GeneratorConfig::fast(Task::BlockTransfer).with_demos(1).with_seed(seed));
        let demo = &ds.demos[0];
        for fs in [FeatureSet::ALL, FeatureSet::CRG, FeatureSet::CG] {
            let m = demo.feature_matrix(&fs);
            prop_assert_eq!(m.cols(), fs.dims(demo.manipulators()));
            prop_assert_eq!(m.rows(), demo.len());
        }
    }
}

/// Trains a deliberately tiny pipeline (enough to exercise both stages,
/// cheap enough to repeat across seeds).
fn tiny_pipeline(seed: u64) -> (TrainedPipeline, kinematics::Dataset) {
    let ds = generate(&GeneratorConfig::fast(Task::Suturing).with_seed(seed));
    let mut cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(seed ^ 0xA5);
    cfg.train.epochs = 2;
    cfg.train_stride = 6;
    let idx: Vec<usize> = (0..ds.len()).collect();
    (TrainedPipeline::train(&ds, &idx, &cfg), ds)
}

/// Offline replay and online streaming are the same `InferenceEngine`, so
/// from the first emitted frame onward they must agree **bit-exactly** — no
/// tolerance — in every context mode and across training seeds.
#[test]
fn offline_and_online_agree_bit_exactly_across_modes_and_seeds() {
    for seed in [11u64, 29, 47] {
        let (mut pipeline, ds) = tiny_pipeline(seed);
        assert!(
            !pipeline.error_nets.is_empty(),
            "seed {seed}: expected at least one dedicated error classifier"
        );
        let demo = &ds.demos[0];
        for mode in [ContextMode::Predicted, ContextMode::Perfect, ContextMode::NoContext] {
            let offline = pipeline.run_demo(demo, mode);

            let mut monitor = SafetyMonitor::new(pipeline, mode);
            let mut gestures_online = Vec::new();
            let mut scores_online = Vec::new();
            for (frame, &truth) in demo.frames.iter().zip(demo.gestures.iter()) {
                let out = match mode {
                    ContextMode::Perfect => monitor.push_with_context(frame, truth),
                    _ => monitor.push(frame).expect("only Perfect mode fails"),
                };
                if let Some(out) = out {
                    gestures_online.push(out.gesture.index());
                    scores_online.push(out.unsafe_probability);
                }
            }
            assert!(!scores_online.is_empty(), "seed {seed} {mode}: nothing emitted");
            let start = demo.len() - scores_online.len();
            assert_eq!(
                &offline.gesture_pred[start..],
                &gestures_online[..],
                "seed {seed} {mode}: gesture disagreement"
            );
            // Exact equality (acceptance criterion): not within-epsilon.
            assert_eq!(
                &offline.unsafe_score[start..],
                &scores_online[..],
                "seed {seed} {mode}: score disagreement"
            );
            pipeline = monitor.into_pipeline();
        }
    }
}

/// Sessions multiplexed through one `MonitorPool` — fed in a deliberately
/// bursty, uneven interleaving — produce exactly what each demo produces
/// through its own dedicated monitor.
#[test]
fn pool_interleaved_sessions_match_isolated_runs() {
    let (pipeline, ds) = tiny_pipeline(23);
    let demos: Vec<_> = ds.demos.iter().take(3).collect();

    let mut pipeline = pipeline;
    let mut isolated: Vec<Vec<(usize, f32, bool)>> = Vec::new();
    for demo in &demos {
        let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
        isolated.push(
            demo.frames
                .iter()
                .filter_map(|f| monitor.push(f).expect("Predicted mode cannot fail"))
                .map(|o| (o.gesture.index(), o.unsafe_probability, o.alert))
                .collect(),
        );
        pipeline = monitor.into_pipeline();
    }

    let mut pool = MonitorPool::with_sessions(pipeline, ContextMode::Predicted, demos.len());
    let mut pooled: Vec<Vec<(usize, f32, bool)>> = vec![Vec::new(); demos.len()];
    let mut cursors = vec![0usize; demos.len()];
    // Bursty schedule: session s advances in bursts of s + 1 frames.
    let mut remaining = demos.iter().map(|d| d.len()).sum::<usize>();
    let mut s = 0usize;
    while remaining > 0 {
        for _ in 0..=s {
            if cursors[s] < demos[s].len() {
                let out = pool.push(s, &demos[s].frames[cursors[s]]).expect("Predicted mode");
                if let Some(out) = out {
                    pooled[s].push((out.gesture.index(), out.unsafe_probability, out.alert));
                }
                cursors[s] += 1;
                remaining -= 1;
            }
        }
        s = (s + 1) % demos.len();
    }

    assert_eq!(isolated, pooled, "interleaving changed session outputs");
}
