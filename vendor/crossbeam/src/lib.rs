//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! scoped threads and multi-producer multi-consumer channels. Since Rust
//! 1.63 the standard library provides scoped threads natively, so that part
//! is a thin adapter keeping crossbeam's `scope(|s| s.spawn(|_| ...))` call
//! shape compiling unchanged; the channel module reimplements the
//! `crossbeam-channel` unbounded API (cloneable `Sender`/`Receiver`,
//! disconnection-aware `send`/`recv`/`try_recv`) over a mutex-guarded queue.

/// MPMC channels (`crossbeam::channel`), unbounded flavour only.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    /// Error returned by [`Sender::send`] when every receiver is gone; the
    /// unsent message is handed back.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now, but senders still exist.
        Empty,
        /// No message available and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed before a message arrived.
        Timeout,
        /// No message available and every sender is gone.
        Disconnected,
    }

    impl std::fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel. Cloning produces another
    /// producer feeding the same queue.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel. Cloning produces another
    /// consumer competing for the same queue.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Returns the message back if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            self.shared.queue.lock().expect("channel poisoned").push_back(msg);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the
                // disconnect. The notification must happen while holding
                // the queue mutex — a receiver that already checked the
                // sender count but has not yet parked in `wait` holds the
                // lock at that point, so taking it here orders this wakeup
                // after its park and the wakeup cannot be lost.
                let _guard = self.shared.queue.lock();
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the queue is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self.shared.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Dequeues a message if one is immediately available.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when the queue is empty but producers
        /// remain; [`TryRecvError::Disconnected`] when it is empty for good.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            match queue.pop_front() {
                Some(msg) => Ok(msg),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a message arrives or `timeout` elapses.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] once the deadline passes with the
        /// queue still empty; [`RecvTimeoutError::Disconnected`] when the
        /// queue is empty and every sender is gone.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            // A timeout too large to represent as an Instant (e.g.
            // `Duration::MAX`, the "effectively no timeout" idiom) degrades
            // to an unbounded wait instead of overflowing — matching real
            // crossbeam rather than panicking.
            let deadline = std::time::Instant::now().checked_add(timeout);
            let mut queue = self.shared.queue.lock().expect("channel poisoned");
            loop {
                if let Some(msg) = queue.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let left = match deadline {
                    None => std::time::Duration::from_secs(86_400), // unbounded: re-park daily
                    Some(d) => {
                        let now = std::time::Instant::now();
                        match d.checked_duration_since(now).filter(|l| !l.is_zero()) {
                            Some(l) => l,
                            None => return Err(RecvTimeoutError::Timeout),
                        }
                    }
                };
                let (guard, _timed_out) =
                    self.shared.ready.wait_timeout(queue, left).expect("channel poisoned");
                // Re-check the queue even on timeout: a message may have
                // raced in between the wakeup and re-acquiring the lock.
                queue = guard;
            }
        }

        /// Blocking iterator over incoming messages; ends at disconnection.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Blocking message iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }
}

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Handle passed to the `scope` closure for spawning workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives a unit placeholder
        /// where crossbeam passes a nested scope handle; workspace callers
        /// all ignore it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature. Panics inside `f` itself propagate, so
    /// in practice this returns `Ok`.
    #[allow(clippy::unnecessary_wraps)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::{channel, thread};

    #[test]
    fn channel_delivers_in_fifo_order() {
        let (tx, rx) = channel::unbounded();
        for i in 0..5 {
            tx.send(i).unwrap();
        }
        let got: Vec<i32> = (0..5).map(|_| rx.recv().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
    }

    #[test]
    fn channel_reports_disconnection() {
        let (tx, rx) = channel::unbounded();
        tx.send(7u32).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(channel::RecvError));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));

        let (tx, rx) = channel::unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(1), Err(channel::SendError(1)));
    }

    #[test]
    fn recv_timeout_returns_messages_then_times_out() {
        use std::time::{Duration, Instant};
        let (tx, rx) = channel::unbounded();
        tx.send(3u32).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(50)), Ok(3));
        let start = Instant::now();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(20)),
            Err(channel::RecvTimeoutError::Timeout)
        );
        assert!(start.elapsed() >= Duration::from_millis(15), "must actually wait");
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(channel::RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn channel_works_across_threads_with_cloned_handles() {
        let (tx, rx) = channel::unbounded();
        let total: u64 = thread::scope(|s| {
            for part in 0..4u64 {
                let tx = tx.clone();
                s.spawn(move |_| {
                    for i in 0..10u64 {
                        tx.send(part * 10 + i).unwrap();
                    }
                });
            }
            drop(tx);
            s.spawn(move |_| rx.iter().sum::<u64>()).join().unwrap()
        })
        .unwrap();
        assert_eq!(total, (0..40u64).sum());
    }

    #[test]
    fn scope_joins_workers_and_collects_results() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|part| s.spawn(move |_| part.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
