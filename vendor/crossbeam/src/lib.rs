//! Offline stand-in for the subset of `crossbeam` this workspace uses:
//! scoped threads. Since Rust 1.63 the standard library provides scoped
//! threads natively, so this is a thin adapter that keeps crossbeam's
//! `scope(|s| s.spawn(|_| ...))` call shape compiling unchanged.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;

    /// Handle passed to the `scope` closure for spawning workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped worker.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the worker and returns its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped worker. The closure receives a unit placeholder
        /// where crossbeam passes a nested scope handle; workspace callers
        /// all ignore it (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(()) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle { inner: self.inner.spawn(move || f(())) }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all spawned threads are joined before this returns.
    ///
    /// # Errors
    ///
    /// Mirrors crossbeam's signature. Panics inside `f` itself propagate, so
    /// in practice this returns `Ok`.
    #[allow(clippy::unnecessary_wraps)]
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_joins_workers_and_collects_results() {
        let data = vec![1u64, 2, 3, 4];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> =
                data.chunks(2).map(|part| s.spawn(move |_| part.iter().sum::<u64>())).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }
}
