//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::bench_function` with `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are intentionally simple — per-iteration means over a few
//! timed batches with min/max spread — but the harness shape, the measured
//! closures, and the reported units match what the real criterion would
//! drive, so relative comparisons between benchmarks remain meaningful.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 30, measurement_time: Duration::from_millis(600) }
    }
}

impl Criterion {
    /// Sets how many timed samples to collect per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs a named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.bench_stats(name, None, f);
        self
    }

    /// Runs a named benchmark and returns its statistics. When `flops` is
    /// given (floating-point operations per iteration), the report line
    /// also shows the achieved MFLOP/s so speedups are comparable across
    /// differently sized problems.
    pub fn bench_stats<F>(&mut self, name: &str, flops: Option<u64>, mut f: F) -> BenchStats
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: self.measurement_time,
            target_samples: self.sample_size,
        };
        f(&mut bencher);
        let stats = BenchStats::from_samples(&bencher.samples);
        report(name, &bencher.samples, flops);
        stats
    }
}

/// Summary statistics of one benchmark, in per-iteration nanoseconds.
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchStats {
    /// Median per-iteration time.
    pub median_ns: f64,
    /// Fastest sample.
    pub min_ns: f64,
    /// Slowest sample.
    pub max_ns: f64,
}

impl BenchStats {
    fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        Self {
            median_ns: sorted[sorted.len() / 2],
            min_ns: sorted[0],
            max_ns: sorted[sorted.len() - 1],
        }
    }

    /// Achieved MFLOP/s given `flops` floating-point operations per
    /// iteration (0.0 when no samples were collected).
    pub fn mflops(&self, flops: u64) -> f64 {
        if self.median_ns == 0.0 {
            return 0.0;
        }
        flops as f64 / self.median_ns * 1_000.0
    }
}

/// Passed to the benchmark closure; times the measured routine.
pub struct Bencher {
    samples: Vec<f64>, // per-iteration nanoseconds
    budget: Duration,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, collecting per-iteration wall-clock samples.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit in ~1/20 of the budget?
        let probe_start = Instant::now();
        let mut probe_iters = 0u64;
        while probe_start.elapsed() < self.budget / 20 || probe_iters < 1 {
            black_box(routine());
            probe_iters += 1;
        }
        let per_iter = probe_start.elapsed().as_secs_f64() / probe_iters as f64;
        let batch = ((self.budget.as_secs_f64() / self.target_samples as f64) / per_iter)
            .ceil()
            .max(1.0) as u64;

        self.samples.clear();
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / batch as f64);
        }
    }
}

fn report(name: &str, samples: &[f64], flops: Option<u64>) {
    if samples.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    let stats = BenchStats::from_samples(samples);
    let rate = match flops {
        Some(f) if stats.median_ns > 0.0 => format!("  {:>9.1} MFLOP/s", stats.mflops(f)),
        _ => String::new(),
    };
    println!(
        "{name:<40} time: [{} {} {}]{rate}",
        fmt_ns(stats.min_ns),
        fmt_ns(stats.median_ns),
        fmt_ns(stats.max_ns)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group: either the flat form
/// `criterion_group!(name, target1, target2)` or the configured form with
/// `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(30));
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn formats_cover_magnitudes() {
        assert!(fmt_ns(12.0).contains("ns"));
        assert!(fmt_ns(12_000.0).contains("µs"));
        assert!(fmt_ns(12_000_000.0).contains("ms"));
        assert!(fmt_ns(12_000_000_000.0).contains('s'));
    }
}
