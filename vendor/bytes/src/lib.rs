//! Offline stand-in for the subset of the `bytes` crate this workspace uses:
//! [`Bytes`] as a cheaply clonable, immutable byte buffer.

use std::sync::Arc;

/// Immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { inner: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b[1], 2);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }
}
