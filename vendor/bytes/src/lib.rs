//! Offline stand-in for the subset of the `bytes` crate this workspace uses:
//! [`Bytes`] as a cheaply clonable immutable byte buffer, plus the cursor
//! API the ingress wire codec is built on — the [`Buf`] / [`BufMut`] traits
//! and a growable [`BytesMut`] with `split_to`. Every method mirrors the
//! real crate's documented semantics (panics included) and is pinned by the
//! unit tests below; the real crate's zero-copy sharing is replaced by
//! plain copies, which changes costs but never observable behavior.

use std::sync::Arc;

/// Immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    inner: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a static slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { inner: Arc::from(data) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { inner: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.inner
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.inner
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Read cursor over a contiguous byte region (the real crate's `Buf`,
/// restricted to single-chunk buffers — `chunk()` always returns everything
/// remaining).
///
/// Like the real crate, the `get_*` methods **panic** when fewer than the
/// requested bytes remain; length-check with [`Buf::remaining`] first on
/// untrusted input (the ingress codec does exactly that).
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;

    /// The remaining bytes, starting at the cursor.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copies `dst.len()` bytes into `dst`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice out of bounds");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 2 bytes remain.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32` (IEEE-754 bit pattern preserved
    /// exactly), advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than 4 bytes remain.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past the end of the slice");
        *self = &self[cnt..];
    }
}

/// Write cursor appending to a growable buffer (the real crate's `BufMut`
/// for the unbounded-capacity implementors this workspace uses — `Vec<u8>`
/// and [`BytesMut`] grow on demand, so `put_*` never panics).
pub trait BufMut {
    /// Appends `src` verbatim.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends an `f32` in little-endian order (IEEE-754 bit pattern
    /// preserved exactly).
    fn put_f32_le(&mut self, v: f32) {
        self.put_u32_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Growable byte buffer with a consuming read cursor — the stand-in for the
/// real crate's `BytesMut`. Appends go through [`BufMut`], consumption
/// through [`Buf`] / [`BytesMut::split_to`]. Consumed capacity is reclaimed
/// by compacting in place before the next append, so a warm buffer reaches
/// a steady state where neither reads nor writes allocate (the per-frame
/// codec contract; the real crate achieves the same via its `reserve`
/// recycling).
#[derive(Default, Clone)]
pub struct BytesMut {
    buf: Vec<u8>,
    /// Read cursor: `buf[off..]` is the live region.
    off: usize,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self { buf: Vec::with_capacity(cap), off: 0 }
    }

    /// Unconsumed length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len() - self.off
    }

    /// Whether everything has been consumed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discards all contents, keeping the allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.off = 0;
    }

    /// Ensures room for `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.compact();
        self.buf.reserve(additional);
    }

    /// Appends `src` (alias of [`BufMut::put_slice`], matching the real
    /// crate's inherent method).
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.put_slice(src);
    }

    /// Splits off and returns the first `at` unconsumed bytes; `self` keeps
    /// the rest. Mirrors the real crate's `split_to`: afterwards `self`
    /// contains `[at, len)` and the returned buffer `[0, at)`.
    ///
    /// # Panics
    ///
    /// Panics if `at > self.len()`.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds: {at} > {}", self.len());
        let head = BytesMut { buf: self.buf[self.off..self.off + at].to_vec(), off: 0 };
        self.off += at;
        head
    }

    /// Freezes the unconsumed bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::copy_from_slice(&self.buf[self.off..])
    }

    /// Moves the live region back to the start of the allocation so
    /// consumed capacity can be reused without reallocating.
    fn compact(&mut self) {
        if self.off == 0 {
            return;
        }
        let len = self.len();
        self.buf.copy_within(self.off.., 0);
        self.buf.truncate(len);
        self.off = 0;
    }
}

impl Buf for BytesMut {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        &self.buf[self.off..]
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past the end of the buffer: {cnt} > {}", self.len());
        self.off += cnt;
        if self.off == self.buf.len() {
            // Fully consumed: rewind so the capacity is reused as-is.
            self.buf.clear();
            self.off = 0;
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.compact();
        self.buf.extend_from_slice(src);
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl From<&[u8]> for BytesMut {
    fn from(v: &[u8]) -> Self {
        Self { buf: v.to_vec(), off: 0 }
    }
}

impl std::fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}

impl Eq for BytesMut {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_and_derefs() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b[1], 2);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    // --- Buf semantics, pinned to the real crate's documented behavior ---

    #[test]
    fn get_methods_read_little_endian_and_advance() {
        // Real-crate doc example: b"\x08\x09\xA0 hello"[..].get_u8() == 8.
        let mut buf: &[u8] = &[0x08, 0x09, 0xA0];
        assert_eq!(buf.get_u8(), 0x08);
        assert_eq!(buf.remaining(), 2);
        assert_eq!(buf.get_u16_le(), 0xA009, "get_u16_le is little-endian");
        assert!(!buf.has_remaining());

        let mut buf: &[u8] = &0xDEADBEEFu32.to_le_bytes();
        assert_eq!(buf.get_u32_le(), 0xDEADBEEF);

        let mut buf: &[u8] = &0x0123_4567_89AB_CDEFu64.to_le_bytes();
        assert_eq!(buf.get_u64_le(), 0x0123_4567_89AB_CDEF);

        // f32 round-trips preserve the exact bit pattern, NaN included.
        for bits in [0x7FC0_0001u32, 1.5f32.to_bits(), 0x8000_0000] {
            let mut v = Vec::new();
            v.put_f32_le(f32::from_bits(bits));
            let mut r: &[u8] = &v;
            assert_eq!(r.get_f32_le().to_bits(), bits);
        }
    }

    #[test]
    fn copy_to_slice_consumes_exactly() {
        let mut buf: &[u8] = &[1, 2, 3, 4, 5];
        let mut dst = [0u8; 3];
        buf.copy_to_slice(&mut dst);
        assert_eq!(dst, [1, 2, 3]);
        assert_eq!(buf.chunk(), &[4, 5]);
    }

    #[test]
    #[should_panic]
    fn get_past_the_end_panics_like_the_real_crate() {
        let mut buf: &[u8] = &[1];
        let _ = buf.get_u32_le();
    }

    #[test]
    #[should_panic]
    fn advance_past_the_end_panics_like_the_real_crate() {
        let mut b = BytesMut::from(&[1u8, 2][..]);
        b.advance(3);
    }

    // --- BufMut semantics ---

    #[test]
    fn put_methods_append_little_endian() {
        let mut b = BytesMut::new();
        b.put_u8(0x01);
        b.put_u16_le(0x0302);
        b.put_u32_le(0x0706_0504);
        b.put_u64_le(0x0F0E_0D0C_0B0A_0908);
        assert_eq!(&b[..], (1u8..=15).collect::<Vec<u8>>().as_slice());
    }

    // --- BytesMut: split_to / advance / reuse ---

    #[test]
    fn split_to_returns_prefix_and_keeps_suffix() {
        // Real-crate doc example: split_to(5) on b"hello world" leaves
        // b" world" in place and returns b"hello".
        let mut a = BytesMut::from(&b"hello world"[..]);
        let b = a.split_to(5);
        assert_eq!(&a[..], b" world");
        assert_eq!(&b[..], b"hello");
        // Splitting everything leaves an empty buffer.
        let mut c = a;
        let d = c.split_to(c.len());
        assert!(c.is_empty());
        assert_eq!(&d[..], b" world");
    }

    #[test]
    #[should_panic]
    fn split_to_past_the_end_panics() {
        let mut a = BytesMut::from(&b"abc"[..]);
        let _ = a.split_to(4);
    }

    #[test]
    fn interleaved_reads_and_writes_preserve_stream_order() {
        // The codec's actual usage: socket bytes appended while earlier
        // frames are consumed off the front.
        let mut b = BytesMut::new();
        b.put_slice(&[1, 2, 3]);
        assert_eq!(b.get_u8(), 1);
        b.put_slice(&[4, 5]);
        assert_eq!(&b[..], &[2, 3, 4, 5]);
        b.advance(2);
        assert_eq!(&b[..], &[4, 5]);
        assert_eq!(b.get_u16_le(), 0x0504);
        assert!(b.is_empty());
    }

    #[test]
    fn warm_buffer_reaches_zero_allocation_steady_state() {
        let mut b = BytesMut::with_capacity(64);
        for round in 0..100 {
            b.put_slice(&[round as u8; 48]);
            while b.has_remaining() {
                let _ = b.get_u8();
            }
            assert!(b.buf.capacity() >= 64, "capacity is retained across rounds");
            assert_eq!(b.buf.capacity(), 64, "no growth past the high-water mark");
        }
    }

    #[test]
    fn freeze_captures_only_unconsumed_bytes() {
        let mut b = BytesMut::from(&[9u8, 8, 7, 6][..]);
        b.advance(2);
        assert_eq!(&b.freeze()[..], &[7, 6]);
    }
}
