//! Offline stand-in for the subset of `proptest` this workspace uses: the
//! `proptest!` macro over range / tuple / `any` / `prop_map` / collection
//! strategies, with `prop_assert*` early-exit assertions.
//!
//! Unlike real proptest there is no shrinking — a failing case reports the
//! case number and assertion message. Sampling is deterministic per test
//! name, so failures reproduce.

/// Everything a test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestRng,
    };
}

/// Strategy namespace mirror (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        pub use crate::vec;
    }
}

/// Per-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Overrides the number of cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic sampling source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds deterministically from a test name.
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// A source of random values of an associated type.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy over all values of `T` (via [`Arbitrary`]).
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any { _marker: core::marker::PhantomData }
}

/// Collection sizes: a fixed count or a range.
pub trait IntoSizeRange {
    /// Draws a concrete length.
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl IntoSizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy for `Vec<T>` with a size spec (`prop::collection::vec`).
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: IntoSizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.sample_len(rng);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a vector strategy (`prop::collection::vec(elem, len)`).
pub fn vec<S: Strategy, L: IntoSizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}

/// Defines property tests. Each `fn` body runs `cases` times with fresh
/// sampled arguments; `prop_assert*` failures abort the case with a message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "property `{}` failed on case {}: {}",
                        stringify!($name),
                        __case,
                        __msg
                    );
                }
            }
        }
    )*};
}

/// Asserts a condition inside `proptest!`, aborting the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

/// Asserts inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_respect_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..500 {
            let x = Strategy::sample(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
            let f = Strategy::sample(&(-1.0f32..1.0), &mut rng);
            assert!((-1.0..1.0).contains(&f));
            let v = Strategy::sample(&crate::vec(0u64..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&n| n < 5));
            let (a, b) = Strategy::sample(&(0usize..2, any::<bool>()), &mut rng);
            assert!(a < 2);
            let _ = b;
        }
    }

    #[test]
    fn prop_map_applies_function() {
        let mut rng = TestRng::deterministic("map");
        let doubled = (1usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = Strategy::sample(&doubled, &mut rng);
            assert_eq!(v % 2, 0);
            assert!((2..20).contains(&v));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_expansion_works(x in 0u64..100, v in prop::collection::vec(0i32..5, 1..4)) {
            prop_assert!(x < 100);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }
}
