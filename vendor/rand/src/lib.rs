//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], the [`Rng`]
//! extension methods (`gen`, `gen_range`, `gen_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `rand` cannot be fetched; this crate keeps the source-level API
//! identical for the calls that appear in the workspace. The generator is
//! xoshiro256++ seeded via SplitMix64 — a different stream than upstream
//! `SmallRng`, which is fine because every consumer only relies on
//! *reproducibility under a fixed seed*, never on specific draws.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be drawn uniformly from an `Rng` via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 explicit mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types drawable uniformly from a bounded interval (mirrors rand's
/// `SampleUniform`, which is what makes `gen_range(-0.05..0.05)` infer the
/// element type from the surrounding expression).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = Standard::sample(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_in(rng, lo, hi, true)
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let u: f64 = Standard::sample(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
            let n: usize = rng.gen_range(3..7);
            assert!((3..7).contains(&n));
            let m: i64 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&m));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..4000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.05 && hi > 0.95, "poor coverage: [{lo}, {hi}]");
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        let mut rng = SmallRng::seed_from_u64(2);
        let dynref: &mut dyn RngCore = &mut rng;
        let x = dynref.gen_range(0.0f32..1.0);
        assert!((0.0..1.0).contains(&x));
    }
}
