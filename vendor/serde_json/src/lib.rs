//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`] over the vendored serde's [`Value`] tree.
//!
//! Floats are printed with Rust's shortest-roundtrip formatting, so a
//! serialize → parse cycle reproduces every finite `f32`/`f64` bit-exactly.
//! Non-finite floats serialize as `null` (matching real serde_json) and
//! parse back as NaN.

use serde::{DeError, Deserialize, Serialize, Value};

/// Serialization / deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the value-tree model; the `Result` mirrors serde_json.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out);
    Ok(out)
}

/// Parses a JSON string into any [`Deserialize`] type.
///
/// # Errors
///
/// Returns an error on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

// ---- writer ----------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => {
            if x.is_finite() {
                let s = x.to_string();
                out.push_str(&s);
                // `Display` omits ".0" for whole floats; keep them as
                // integers is fine for JSON, nothing to fix up.
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let start = self.pos;
                    let rest = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = rest.chars().next().ok_or_else(|| Error::new("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if stripped.parse::<u64>().is_ok() || text.parse::<i64>().is_ok() {
                    if let Ok(n) = text.parse::<i64>() {
                        return Ok(Value::Int(n));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-3").unwrap(), -3);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
    }

    #[test]
    fn float_roundtrip_is_bit_exact() {
        for &x in &[0.1f32, 1e-7, 3.4e38, -2.5, 123.456] {
            let json = to_string(&x).unwrap();
            let back: f32 = from_str(&json).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {json} -> {back}");
        }
        let back: f32 = from_str(&to_string(&f32::NAN).unwrap()).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn nested_containers_roundtrip() {
        let v: Vec<(usize, Vec<f32>)> = vec![(1, vec![0.5, -0.25]), (2, vec![])];
        let json = to_string(&v).unwrap();
        let back: Vec<(usize, Vec<f32>)> = from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn full_u64_precision_survives() {
        let big = u64::MAX - 3;
        let back: u64 = from_str(&to_string(&big).unwrap()).unwrap();
        assert_eq!(big, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u64>>("[1,").is_err());
    }
}
