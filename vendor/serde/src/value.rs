//! The value tree shared by serialization, deserialization, and JSON I/O.

/// A dynamically typed value tree (the JSON data model plus an integer
/// split that preserves full `u64`/`i64` precision).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats and `None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Negative (or any signed) integer.
    Int(i64),
    /// Non-negative integer, full `u64` range.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value mapping (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(n) => Some(n),
            Value::Int(n) => u64::try_from(n).ok(),
            Value::Float(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                Some(x as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(n) => Some(n),
            Value::UInt(n) => i64::try_from(n).ok(),
            Value::Float(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(x as i64),
            _ => None,
        }
    }

    /// Numeric value as `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(x) => Some(x),
            Value::Int(n) => Some(n as f64),
            Value::UInt(n) => Some(n as f64),
            _ => None,
        }
    }

    /// Short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Looks up a required object field (derive-generated code calls this).
///
/// # Errors
///
/// Returns a [`DeError`] if `v` is not an object or lacks `name`.
pub fn field<'v>(v: &'v Value, name: &str) -> Result<&'v Value, DeError> {
    let obj = v.as_object().ok_or_else(|| DeError::expected("object", v))?;
    obj.iter()
        .find(|(k, _)| k == name)
        .map(|(_, val)| val)
        .ok_or_else(|| DeError::new(format!("missing field `{name}`")))
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error from a message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }

    /// Creates a "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::new(format!("expected {what}, found {}", found.kind()))
    }

    /// Prefixes the message with surrounding context (e.g. a field name).
    #[must_use]
    pub fn context(self, ctx: &str) -> Self {
        Self::new(format!("{ctx}: {}", self.message))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
