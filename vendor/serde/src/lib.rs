//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde cannot be fetched in this container, so this crate keeps
//! the workspace's source-level API (`use serde::{Serialize, Deserialize}`,
//! `#[derive(Serialize, Deserialize)]`, `serde_json::to_string`/`from_str`)
//! compiling and behaving, via a much simpler design: serialization goes
//! through an owned [`Value`] tree rather than serde's visitor machinery.
//!
//! * [`Serialize`] converts `&self` into a [`Value`].
//! * [`Deserialize`] reconstructs `Self` from a [`&Value`](Value).
//! * The companion `serde_derive` proc-macro crate generates both impls for
//!   structs and enums, mirroring serde's externally-tagged enum format.
//! * The companion `serde_json` crate renders a [`Value`] to JSON text and
//!   parses JSON text back into a [`Value`].

mod value;

pub use value::{field, DeError, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Types convertible into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the mismatch when `v` has the wrong
    /// shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------------

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_u64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v.as_i64().ok_or_else(|| DeError::expected(stringify!($t), v))?;
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "integer {n} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let x = *self as f64;
                if x.is_finite() {
                    Value::Float(x)
                } else {
                    // Like serde_json: non-finite floats become null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Null => Ok(<$t>::NAN),
                    _ => v
                        .as_f64()
                        .map(|x| x as $t)
                        .ok_or_else(|| DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::expected("single-char string", v)),
        }
    }
}

// ---- container impls -------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed.map(|vec| vec.try_into().expect("length checked above"))
            }
            _ => Err(DeError::expected("fixed-size array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            _ => T::from_value(v).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(v).map(Into::into)
    }
}

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        // Key-value pair list: keys are not restricted to strings here.
        Value::Array(
            self.iter().map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()])).collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for std::collections::BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(kv) if kv.len() == 2 => {
                        Ok((K::from_value(&kv[0])?, V::from_value(&kv[1])?))
                    }
                    _ => Err(DeError::expected("[key, value] pair", pair)),
                })
                .collect(),
            _ => Err(DeError::expected("map as pair array", v)),
        }
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident $idx:tt),+);)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == ARITY => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", v)),
                }
            }
        }
    )*};
}
impl_serde_tuple! {
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f32::from_value(&1.25f32.to_value()).unwrap(), 1.25);
        assert!(f32::from_value(&f32::NAN.to_value()).unwrap().is_nan());
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, -2.5f32), (3, 4.0)];
        assert_eq!(Vec::<(usize, f32)>::from_value(&v.to_value()).unwrap(), v);
        let opt: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&opt.to_value()).unwrap(), None);
        let mut map = std::collections::BTreeMap::new();
        map.insert(3usize, "x".to_string());
        assert_eq!(
            std::collections::BTreeMap::<usize, String>::from_value(&map.to_value()).unwrap(),
            map
        );
    }

    #[test]
    fn out_of_range_integers_error() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Str("no".into())).is_err());
    }
}
