//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! value-tree `serde` stand-in.
//!
//! The macros parse the item declaration directly from the token stream (no
//! `syn`), supporting the shapes this workspace actually declares:
//!
//! * structs with named fields, unit structs, tuple structs,
//! * enums with unit, tuple (incl. newtype), and struct variants,
//! * simple type parameters (`struct Segment<T> { ... }`),
//! * `#[serde(default)]` on named fields: a field missing from the input
//!   deserializes to `Default::default()` instead of erroring, so configs
//!   written before the field existed keep loading.
//!
//! Serialized form mirrors serde's defaults: structs become objects keyed by
//! field name; unit enum variants become strings; data-carrying variants
//! become single-key objects (`{"Variant": ...}`).

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Impl::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Impl::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Impl {
    Serialize,
    Deserialize,
}

/// The parsed shape of the deriving item.
struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

enum Body {
    UnitStruct,
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

/// A named field plus the one field attribute the stand-in honors.
struct Field {
    name: String,
    /// `#[serde(default)]`: deserialize a missing field to
    /// `Default::default()` instead of erroring.
    default: bool,
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

fn expand(input: TokenStream, which: Impl) -> TokenStream {
    let item = parse_item(input);
    let code = match which {
        Impl::Serialize => gen_serialize(&item),
        Impl::Deserialize => gen_deserialize(&item),
    };
    code.parse().expect("serde_derive: generated code failed to parse")
}

// ---- parsing ---------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    // Skip attributes (`#[...]`, incl. doc comments) and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // The bracketed attribute body.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                // `pub(crate)` and friends carry a parenthesized group.
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, got {other:?}"),
    };

    // Optional `<T, U>` generic parameter list (simple idents only).
    let mut generics = Vec::new();
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            iter.next();
            let mut depth = 1usize;
            while depth > 0 {
                match iter.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                    Some(TokenTree::Ident(id)) if depth == 1 => generics.push(id.to_string()),
                    Some(_) => {}
                    None => panic!("serde_derive: unclosed generic parameter list"),
                }
            }
        }
    }

    let body = match kind.as_str() {
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Body::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Body::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };

    Item { name, generics, body }
}

/// Extracts field names from a named-field body, skipping visibility and
/// types (commas inside `<...>` are depth-tracked). Attributes are skipped
/// too, except `#[serde(default)]`, which is recorded on the field.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        let mut default = false;
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.next() {
                        default |= is_serde_default(g.stream());
                    }
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = iter.next() else {
            break;
        };
        fields.push(Field { name: field.to_string(), default });
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, got {other:?}"),
        }
        skip_type_until_comma(&mut iter);
    }
    fields
}

/// Whether a bracketed attribute body is exactly `serde(default)`. Any other
/// `serde(...)` content is unsupported by the stand-in and rejected loudly
/// rather than silently ignored.
fn is_serde_default(attr_body: TokenStream) -> bool {
    let mut iter = attr_body.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return false;
    };
    let inner: Vec<String> = args.stream().into_iter().map(|t| t.to_string()).collect();
    if inner == ["default"] {
        true
    } else {
        panic!("serde_derive: unsupported serde attribute `serde({})`", inner.join(""))
    }
}

/// Advances past a type (or discriminant expression) up to and including the
/// next top-level comma.
fn skip_type_until_comma(iter: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle = 0i32;
    for tt in iter.by_ref() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return,
            _ => {}
        }
    }
}

/// Number of fields in a tuple body (top-level comma count, trailing comma
/// tolerated).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in stream {
        any = true;
        trailing_comma = false;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip attributes (e.g. `#[default]`, doc comments).
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(name)) = iter.next() else {
            break;
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = VariantFields::Named(parse_named_fields(g.stream()));
                iter.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = VariantFields::Tuple(count_tuple_fields(g.stream()));
                iter.next();
                f
            }
            _ => VariantFields::Unit,
        };
        variants.push(Variant { name: name.to_string(), fields });
        // Skip a discriminant (`= expr`) and/or the separating comma.
        skip_type_until_comma(&mut iter);
    }
    variants
}

// ---- code generation -------------------------------------------------------

fn impl_header(item: &Item, trait_name: &str) -> String {
    if item.generics.is_empty() {
        format!("impl ::serde::{trait_name} for {} ", item.name)
    } else {
        let bounded: Vec<String> =
            item.generics.iter().map(|g| format!("{g}: ::serde::{trait_name}")).collect();
        let plain = item.generics.join(", ");
        format!("impl<{}> ::serde::{trait_name} for {}<{plain}> ", bounded.join(", "), item.name)
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.body {
        Body::UnitStruct => "::serde::Value::Null".to_string(),
        Body::NamedStruct(fields) => named_to_value(fields, "self."),
        Body::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::to_value(&self.{i})")).collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Body::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => format!(
                            "Self::{vname} => ::serde::Value::Str(\"{vname}\".to_string()),"
                        ),
                        VariantFields::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let payload = if *n == 1 {
                                "::serde::Serialize::to_value(f0)".to_string()
                            } else {
                                let items: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", items.join(", "))
                            };
                            format!(
                                "Self::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {payload})]),",
                                binds.join(", ")
                            )
                        }
                        VariantFields::Named(fields) => {
                            let inner = named_to_value(fields, "");
                            let names: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            format!(
                                "Self::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})]),",
                                names.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "{header}{{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}",
        header = impl_header(item, "Serialize")
    )
}

fn named_to_value(fields: &[Field], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(\"{name}\".to_string(), ::serde::Serialize::to_value(&{prefix}{name}))",
                name = f.name
            )
        })
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.body {
        Body::UnitStruct => "Ok(Self)".to_string(),
        Body::NamedStruct(fields) => named_from_value(fields, "Self", "v"),
        Body::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = v.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", v))?; \
                 if __arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong tuple arity for {name}\")); }} \
                 Ok(Self({}))",
                items.join(", ")
            )
        }
        Body::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, VariantFields::Unit))
                .map(|v| format!("\"{0}\" => Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        VariantFields::Unit => None,
                        VariantFields::Tuple(n) if *n == 1 => Some(format!(
                            "\"{vname}\" => Ok(Self::{vname}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        VariantFields::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(&__arr[{i}])?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{ \
                                   let __arr = __inner.as_array().ok_or_else(|| ::serde::DeError::expected(\"array\", __inner))?; \
                                   if __arr.len() != {n} {{ return Err(::serde::DeError::new(\"wrong arity for {name}::{vname}\")); }} \
                                   Ok(Self::{vname}({})) }},",
                                items.join(", ")
                            ))
                        }
                        VariantFields::Named(fields) => Some(format!(
                            "\"{vname}\" => {{ {} }},",
                            named_from_value(fields, &format!("Self::{vname}"), "__inner")
                        )),
                    }
                })
                .collect();
            format!(
                "match v {{ \
                   ::serde::Value::Str(__s) => match __s.as_str() {{ \
                     {unit} \
                     __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))), \
                   }}, \
                   ::serde::Value::Object(__o) if __o.len() == 1 => {{ \
                     let (__tag, __inner) = &__o[0]; \
                     match __tag.as_str() {{ \
                       {data} \
                       __other => Err(::serde::DeError::new(format!(\"unknown {name} variant `{{__other}}`\"))), \
                     }} \
                   }}, \
                   _ => Err(::serde::DeError::expected(\"{name} variant\", v)), \
                 }}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    format!(
        "{header}{{ fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}",
        header = impl_header(item, "Deserialize")
    )
}

fn named_from_value(fields: &[Field], constructor: &str, source: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            if f.default {
                // `#[serde(default)]`: a missing field is not an error.
                format!(
                    "{name}: match ::serde::field({source}, \"{name}\") {{ \
                       Ok(__fv) => ::serde::Deserialize::from_value(__fv) \
                         .map_err(|e| e.context(\"field `{name}`\"))?, \
                       Err(_) => ::std::default::Default::default(), \
                     }}"
                )
            } else {
                format!(
                    "{name}: ::serde::Deserialize::from_value(::serde::field({source}, \"{name}\")?) \
                     .map_err(|e| e.context(\"field `{name}`\"))?"
                )
            }
        })
        .collect();
    format!("Ok({constructor} {{ {} }})", entries.join(", "))
}
