//! Train a Block Transfer monitor, export it as a JSON checkpoint, reload
//! it, and verify the reloaded pipeline produces identical decisions — the
//! deployment workflow for the "trusted computing base" integration the
//! paper describes (§III).
//!
//! ```sh
//! cargo run --release --example train_and_export
//! ```

use context_monitor::{ContextMode, SavedPipeline, TrainedPipeline};
use faults::{build_block_transfer_dataset, BlockTransferDataConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = build_block_transfer_dataset(&BlockTransferDataConfig::fast(3));
    let folds = dataset.loso_folds();
    let fold = &folds[0];
    let cfg = bench_cfg();
    let mut pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);

    // Export.
    let checkpoint = pipeline.save();
    let json = serde_json::to_string(&checkpoint)?;
    let path = std::env::temp_dir().join("context_monitor_blocktransfer.json");
    std::fs::write(&path, &json)?;
    println!("checkpoint written to {} ({} KiB)", path.display(), json.len() / 1024);

    // Reload and verify.
    let restored: SavedPipeline = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
    let reloaded = TrainedPipeline::from_saved(restored);
    let demo = &dataset.demos[fold.test[0]];
    let a = pipeline.run_demo(demo, ContextMode::Predicted);
    let b = reloaded.run_demo(demo, ContextMode::Predicted);
    assert_eq!(a.gesture_pred, b.gesture_pred, "gesture predictions must survive the roundtrip");
    assert_eq!(a.unsafe_pred, b.unsafe_pred, "alerts must survive the roundtrip");
    println!(
        "reloaded pipeline reproduces all {} per-frame decisions on {}",
        a.gesture_pred.len(),
        demo.id
    );
    println!(
        "dedicated error classifiers: {:?}",
        pipeline.dedicated_gestures().iter().map(|g| g.to_string()).collect::<Vec<_>>()
    );
    Ok(())
}

fn bench_cfg() -> context_monitor::MonitorConfig {
    let mut cfg = context_monitor::MonitorConfig::fast(kinematics::FeatureSet::CG)
        .with_seed(3)
        .with_window(10, 1);
    cfg.train.epochs = 8;
    cfg.train_stride = 3;
    cfg
}
