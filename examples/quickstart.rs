//! Quickstart: train the context-aware safety monitor on synthetic Suturing
//! demonstrations and stream a held-out trial through it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use context_monitor::{ContextMode, MonitorConfig, SafetyMonitor, TrainedPipeline};
use gestures::Task;
use jigsaws::{generate, GeneratorConfig};
use kinematics::FeatureSet;

fn main() {
    // 1. Data: JIGSAWS-like Suturing demonstrations (synthetic; see
    //    DESIGN.md for the substitution rationale).
    let dataset = generate(&GeneratorConfig::fast(Task::Suturing).with_demos(12).with_seed(7));
    let folds = dataset.loso_folds();
    let fold = &folds[0];
    println!(
        "dataset: {} demos, {} frames, fold 1 trains on {} / tests on {}",
        dataset.len(),
        dataset.total_frames(),
        fold.train.len(),
        fold.test.len()
    );

    // 2. Train the two-stage pipeline (gesture classifier + per-gesture
    //    erroneous-gesture classifiers).
    let cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(7);
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);
    println!(
        "trained gesture classifier + {} gesture-specific error classifiers",
        pipeline.dedicated_gestures().len()
    );

    // 3. Stream a test demonstration through the online monitor.
    let demo = &dataset.demos[fold.test[0]];
    let mut monitor = SafetyMonitor::new(pipeline, ContextMode::Predicted);
    let mut alerts = 0usize;
    let mut last_gesture = None;
    for (t, frame) in demo.frames.iter().enumerate() {
        if let Some(out) = monitor.push(frame).expect("Predicted mode cannot fail") {
            if last_gesture != Some(out.gesture) {
                println!(
                    "t={:>5.2}s  context -> {} ({})",
                    t as f32 / demo.hz,
                    out.gesture,
                    out.gesture.description()
                );
                last_gesture = Some(out.gesture);
            }
            if out.alert {
                alerts += 1;
                if alerts <= 5 {
                    println!(
                        "t={:>5.2}s  ALERT: unsafe {} (p = {:.2}, inference {:.2} ms)",
                        t as f32 / demo.hz,
                        out.gesture,
                        out.unsafe_probability,
                        out.compute_ms
                    );
                }
            }
        }
    }
    println!(
        "\n{}: {} frames, {} ground-truth unsafe frames, {} alerts raised",
        demo.id,
        demo.len(),
        demo.unsafe_frames(),
        alerts
    );
}
