//! Raven II fault-injection walkthrough: run a scaled Table III campaign,
//! then dissect a single injection — simulator ground truth vs. the
//! vision-based labeling pipeline.
//!
//! ```sh
//! cargo run --release --example fault_injection_campaign
//! ```

use faults::{
    run_campaign, run_injection, CampaignConfig, CartesianFault, FaultSpec, GrasperFault,
};
use raven_sim::{run_block_transfer, NoFaults, SimConfig, WorldEvent};
use vision::{label_trial, reference_trace, VisionConfig};

fn main() {
    // A 10%-scale Table III campaign (the full grid is 651 injections).
    let cfg = CampaignConfig {
        sim: SimConfig { hz: 100.0, duration_s: 6.0, seed: 0, tremor: 0.3 },
        seed: 99,
        scale: 0.1,
        threads: 4,
    };
    let report = run_campaign(&cfg);
    println!("{}", report.render());

    // One hand-picked injection: a high grasper-angle fault mid-carry.
    let spec = FaultSpec {
        grasper: Some(GrasperFault { target: 1.35, interval: (0.55, 0.70) }),
        cartesian: Some(CartesianFault { deviation: 4000.0, interval: (0.50, 0.60) }),
    };
    let sim = SimConfig { hz: 100.0, duration_s: 6.0, seed: 5, tremor: 0.3 };
    let (trial, injector) = run_injection(&sim, spec);
    println!("-- single injection: grasper -> 1.35 rad during [0.55, 0.70] --");
    println!("fault first active at tick {:?}", injector.first_active_tick());
    for ev in &trial.events {
        match ev {
            WorldEvent::Grasped { tick, arm } => {
                println!("tick {tick:>4}: block grasped by arm {arm}")
            }
            WorldEvent::Released { tick, grasper_angle } => {
                println!("tick {tick:>4}: block released (grasper at {grasper_angle:.2} rad)")
            }
            WorldEvent::Landed { tick, position, in_receptacle } => println!(
                "tick {tick:>4}: block landed at ({:.0}, {:.0}), in receptacle: {in_receptacle}",
                position.x, position.y
            ),
        }
    }
    println!("simulator outcome: {:?}", trial.outcome);

    // Orthogonal vision-based labeling (§IV-B).
    let vcfg = VisionConfig::default();
    let reference =
        reference_trace(&run_block_transfer(&SimConfig { seed: 6, ..sim }, &mut NoFaults), &vcfg);
    let verdict = label_trial(&trial, &reference, &vcfg);
    println!(
        "vision verdict: failure = {:?}, drop detected at video frame {:?}, DTW distance {:.2}",
        verdict.failure, verdict.drop_frame, verdict.dtw_distance
    );
}
