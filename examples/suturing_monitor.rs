//! Suturing (dVRK) evaluation walkthrough: LOSO training, the three context
//! modes of Table VIII, and the per-gesture breakdown of Table IX.
//!
//! ```sh
//! cargo run --release --example suturing_monitor
//! ```

use context_monitor::{
    evaluate_pipeline, per_gesture_report, ContextMode, MonitorConfig, TrainedPipeline,
};
use gestures::{Gesture, Task};
use jigsaws::{generate, GeneratorConfig};
use kinematics::FeatureSet;

fn main() {
    let dataset = generate(
        &GeneratorConfig {
            num_demos: 15,
            duration_scale: 0.4,
            max_gestures: 12,
            ..GeneratorConfig::new(Task::Suturing)
        }
        .with_seed(11),
    );
    let folds = dataset.loso_folds();
    let fold = &folds[0];
    let cfg = MonitorConfig::fast(FeatureSet::CRG).with_seed(11);
    let pipeline = TrainedPipeline::train(&dataset, &fold.train, &cfg);

    println!("-- overall pipeline (Table VIII style) --");
    for mode in [ContextMode::Perfect, ContextMode::Predicted, ContextMode::NoContext] {
        let eval = evaluate_pipeline(&pipeline, &dataset, &fold.test, mode);
        println!("{}", eval.table8_row(&mode.to_string()));
    }

    println!("\n-- per-gesture breakdown (Table IX style, predicted context) --");
    println!(
        "{:<5} {:>9} {:>12} {:>12} {:>8} {:>7}",
        "Gest", "detect%", "jitter(ms)", "react(ms)", "F1err", "events"
    );
    for row in per_gesture_report(&pipeline, &dataset, &fold.test, ContextMode::Predicted) {
        println!(
            "{:<5} {:>8.1}% {:>12.0} {:>12.0} {:>8.2} {:>7}",
            Gesture::from_index(row.gesture).map(|g| g.to_string()).unwrap_or_default(),
            100.0 * row.detection_accuracy,
            row.avg_jitter_ms,
            row.avg_reaction_ms,
            row.f1_err,
            row.events
        );
    }
}
